#include "linalg/solver.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "linalg/laplacian.h"
#include "obs/metrics.h"

namespace cfcm {
namespace {

TEST(SolverBackendTest, NameParseRoundTrip) {
  for (SolverBackend b : {SolverBackend::kAuto, SolverBackend::kDense,
                          SolverBackend::kSparseLdlt, SolverBackend::kCg}) {
    const auto parsed = ParseSolverBackend(SolverBackendName(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  // networkx spelling of the dense backend.
  EXPECT_EQ(ParseSolverBackend("full"), SolverBackend::kDense);
  EXPECT_FALSE(ParseSolverBackend("lu").has_value());
  EXPECT_FALSE(ParseSolverBackend("").has_value());
}

TEST(SolverBackendTest, AutoResolvesBySize) {
  EXPECT_EQ(ResolveSolverBackend(SolverBackend::kAuto, 10),
            SolverBackend::kDense);
  EXPECT_EQ(ResolveSolverBackend(SolverBackend::kAuto, kDenseBackendMaxN),
            SolverBackend::kDense);
  EXPECT_EQ(ResolveSolverBackend(SolverBackend::kAuto, kDenseBackendMaxN + 1),
            SolverBackend::kSparseLdlt);
  // Explicit requests pass through untouched.
  EXPECT_EQ(ResolveSolverBackend(SolverBackend::kCg, 10), SolverBackend::kCg);
  EXPECT_EQ(ResolveSolverBackend(SolverBackend::kDense, 1 << 20),
            SolverBackend::kDense);
}

TEST(SolverTest, BackendsAgreeOnSolveAndTrace) {
  for (const Graph& g : {KarateClub(), ContiguousUsa(), KarateClubWeighted()}) {
    const std::vector<NodeId> removed = {0, 3};
    auto dense = MakeGroundedSolver(g, removed, SolverBackend::kDense);
    auto sparse = MakeGroundedSolver(g, removed, SolverBackend::kSparseLdlt);
    auto cg = MakeGroundedSolver(g, removed, SolverBackend::kCg);
    ASSERT_TRUE(dense.ok() && sparse.ok() && cg.ok());
    EXPECT_EQ((*dense)->backend(), SolverBackend::kDense);
    EXPECT_EQ((*sparse)->backend(), SolverBackend::kSparseLdlt);
    EXPECT_EQ((*cg)->backend(), SolverBackend::kCg);

    Rng rng(3);
    Vector b(static_cast<std::size_t>((*dense)->dim()));
    for (auto& v : b) v = rng.NextDouble() - 0.5;
    const Vector xd = (*dense)->Solve(b);
    const Vector xs = (*sparse)->Solve(b);
    const Vector xc = (*cg)->Solve(b);
    for (int i = 0; i < (*dense)->dim(); ++i) {
      EXPECT_NEAR(xs[i], xd[i], 1e-10 * (1.0 + std::abs(xd[i])));
      // CG under its default 1e-8 relative-residual tolerance.
      EXPECT_NEAR(xc[i], xd[i], 1e-5 * (1.0 + std::abs(xd[i])));
    }

    const double td = (*dense)->TraceInverse();
    EXPECT_NEAR((*sparse)->TraceInverse(), td, 1e-9 * td);
    EXPECT_NEAR((*cg)->TraceInverse(), td, 1e-4 * td);
    EXPECT_NEAR(td, ExactTraceInverseSubmatrix(g, removed), 1e-12 * td);
  }
}

TEST(SolverTest, InverseDiagonalAgreesAcrossBackends) {
  const Graph g = DolphinsSynthetic();
  const std::vector<NodeId> removed = {1};
  auto dense = MakeGroundedSolver(g, removed, SolverBackend::kDense);
  auto sparse = MakeGroundedSolver(g, removed, SolverBackend::kSparseLdlt);
  ASSERT_TRUE(dense.ok() && sparse.ok());
  const Vector dd = (*dense)->InverseDiagonal();
  const Vector ds = (*sparse)->InverseDiagonal();
  for (std::size_t i = 0; i < dd.size(); ++i) {
    EXPECT_NEAR(ds[i], dd[i], 1e-10 * (1.0 + dd[i]));
  }
}

TEST(SolverTest, TraceInverseSubmatrixHelperMatchesReference) {
  const Graph g = KarateClub();
  const double ref = ExactTraceInverseSubmatrix(g, {0});
  for (SolverBackend b : {SolverBackend::kAuto, SolverBackend::kDense,
                          SolverBackend::kSparseLdlt}) {
    auto trace = TraceInverseSubmatrix(g, {0}, b);
    ASSERT_TRUE(trace.ok());
    EXPECT_NEAR(*trace, ref, 1e-9 * ref);
  }
}

TEST(SolverTest, SparseMemoryBelowDenseMemory) {
  const Graph g = ContiguousUsa();
  auto dense = MakeGroundedSolver(g, {0}, SolverBackend::kDense);
  auto sparse = MakeGroundedSolver(g, {0}, SolverBackend::kSparseLdlt);
  ASSERT_TRUE(dense.ok() && sparse.ok());
  EXPECT_LT((*sparse)->MemoryBytes(), (*dense)->MemoryBytes());
}

TEST(SolverTest, RejectsBadRemovedSets) {
  const Graph g = KarateClub();
  EXPECT_EQ(MakeGroundedSolver(g, {}, SolverBackend::kAuto).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeGroundedSolver(g, {99}, SolverBackend::kAuto).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SolverTest, RejectsSingularSubmatrixOnEveryFactoringBackend) {
  const Graph g = BuildGraph(4, {{0, 1}, {2, 3}});
  for (SolverBackend b : {SolverBackend::kDense, SolverBackend::kSparseLdlt}) {
    auto solver = MakeGroundedSolver(g, {0}, b);
    ASSERT_FALSE(solver.ok());
    EXPECT_EQ(solver.status().code(), StatusCode::kNumericalError);
  }
}

TEST(SolverTest, RecordsLinalgMetrics) {
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t factorizations_before =
      registry.counter("engine.linalg.factorizations").value();
  const uint64_t solves_before =
      registry.counter("engine.linalg.solves").value();
  const uint64_t cg_before =
      registry.counter("engine.linalg.cg_iterations").value();

  const Graph g = KarateClub();
  auto sparse = MakeGroundedSolver(g, {0}, SolverBackend::kSparseLdlt);
  auto cg = MakeGroundedSolver(g, {0}, SolverBackend::kCg);
  ASSERT_TRUE(sparse.ok() && cg.ok());
  Vector b(static_cast<std::size_t>((*sparse)->dim()), 1.0);
  (void)(*sparse)->Solve(b);
  (void)(*cg)->Solve(b);

  EXPECT_GE(registry.counter("engine.linalg.factorizations").value(),
            factorizations_before + 2);
  EXPECT_GE(registry.counter("engine.linalg.solves").value(),
            solves_before + 2);
  EXPECT_GT(registry.counter("engine.linalg.cg_iterations").value(),
            cg_before);
}

}  // namespace
}  // namespace cfcm
