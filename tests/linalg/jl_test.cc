#include "linalg/jl.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace cfcm {
namespace {

TEST(JlSketchTest, EntriesArePlusMinusScale) {
  const JlSketch sketch(16, 100, 42);
  const double s = sketch.scale();
  EXPECT_NEAR(s, 0.25, 1e-12);
  for (int j = 0; j < 16; ++j) {
    for (NodeId v = 0; v < 100; v += 7) {
      const double e = sketch.Entry(j, v);
      EXPECT_TRUE(e == s || e == -s);
    }
  }
}

TEST(JlSketchTest, DeterministicInSeed) {
  const JlSketch a(8, 50, 1), b(8, 50, 1), c(8, 50, 2);
  int diffs = 0;
  for (int j = 0; j < 8; ++j) {
    for (NodeId v = 0; v < 50; ++v) {
      EXPECT_EQ(a.Entry(j, v), b.Entry(j, v));
      diffs += a.Entry(j, v) != c.Entry(j, v);
    }
  }
  EXPECT_GT(diffs, 100);  // different seeds give a different sketch
}

TEST(JlSketchTest, ColumnIntoMatchesEntry) {
  const JlSketch sketch(70, 20, 9);  // > 64 rows: crosses word boundary
  std::vector<double> col(70);
  sketch.ColumnInto(13, col.data());
  for (int j = 0; j < 70; ++j) EXPECT_EQ(col[j], sketch.Entry(j, 13));
}

TEST(JlSketchTest, AddColumnAccumulates) {
  const JlSketch sketch(10, 5, 3);
  std::vector<double> acc(10, 1.0);
  sketch.AddColumn(2, 2.0, acc.data());
  for (int j = 0; j < 10; ++j) {
    EXPECT_NEAR(acc[j], 1.0 + 2.0 * sketch.Entry(j, 2), 1e-12);
  }
}

TEST(JlSketchTest, NormPreservationOnAverage) {
  // ||W e_v||^2 = 1 exactly (w entries of magnitude 1/sqrt(w)).
  const JlSketch sketch(32, 10, 5);
  for (NodeId v = 0; v < 10; ++v) {
    double norm = 0;
    for (int j = 0; j < 32; ++j) {
      norm += sketch.Entry(j, v) * sketch.Entry(j, v);
    }
    EXPECT_NEAR(norm, 1.0, 1e-12);
  }
}

TEST(JlSketchTest, PairwiseDistancePreservedApproximately) {
  // Distortion check on standard basis pairs: ||W(e_u - e_v)||^2 should
  // concentrate around ||e_u - e_v||^2 = 2.
  const int w = 256;
  const JlSketch sketch(w, 40, 11);
  double worst = 0;
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = u + 1; v < 40; v += 9) {
      double norm = 0;
      for (int j = 0; j < w; ++j) {
        const double d = sketch.Entry(j, u) - sketch.Entry(j, v);
        norm += d * d;
      }
      worst = std::max(worst, std::fabs(norm - 2.0) / 2.0);
    }
  }
  EXPECT_LT(worst, 0.5);  // well within the JL regime for w=256
}

TEST(JlTheoryRowsTest, MatchesLemma) {
  // w >= 24 eps^-2 ln n.
  EXPECT_EQ(JlTheoryRows(1000, 0.5),
            static_cast<int>(std::ceil(24.0 / 0.25 * std::log(1000.0))));
  EXPECT_GT(JlTheoryRows(1000, 0.1), JlTheoryRows(1000, 0.3));
}

}  // namespace
}  // namespace cfcm
