#include "linalg/sparse_ldlt.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "linalg/ldlt.h"

namespace cfcm {
namespace {

Vector RandomRhs(int dim, uint64_t seed) {
  Rng rng(seed);
  Vector b(static_cast<std::size_t>(dim));
  for (auto& v : b) v = rng.NextDouble() - 0.5;
  return b;
}

// Dense reference pair for L_{-S}.
struct DenseRef {
  SubmatrixIndex index;
  LdltFactorization ldlt;
};

DenseRef DenseReference(const Graph& g, const std::vector<NodeId>& removed) {
  SubmatrixIndex index = MakeSubmatrixIndex(g.num_nodes(), removed);
  auto ldlt =
      LdltFactorization::Compute(DenseLaplacianSubmatrix(g, index));
  EXPECT_TRUE(ldlt.ok());
  return {std::move(index), std::move(*ldlt)};
}

TEST(SparseLdltTest, SolveMatchesDenseOnPinnedGraphs) {
  const std::vector<Graph> graphs = {KarateClub(), ContiguousUsa(),
                                     ZebraSynthetic(), DolphinsSynthetic(),
                                     KarateClubWeighted()};
  for (const Graph& g : graphs) {
    for (const std::vector<NodeId> removed :
         {std::vector<NodeId>{0}, std::vector<NodeId>{0, 5, 7}}) {
      const SubmatrixIndex index =
          MakeSubmatrixIndex(g.num_nodes(), removed);
      auto factor = SparseLdlt::FactorGrounded(g, index);
      ASSERT_TRUE(factor.ok());
      DenseRef ref = DenseReference(g, removed);
      const Vector b = RandomRhs(factor->dim(), 11);
      const Vector x_sparse = factor->Solve(b);
      const Vector x_dense = ref.ldlt.Solve(b);
      for (int i = 0; i < factor->dim(); ++i) {
        EXPECT_NEAR(x_sparse[i], x_dense[i],
                    1e-10 * (1.0 + std::abs(x_dense[i])));
      }
    }
  }
}

TEST(SparseLdltTest, TraceInverseMatchesDense) {
  const std::vector<Graph> graphs = {KarateClub(), ContiguousUsa(),
                                     ZebraSynthetic(), DolphinsSynthetic(),
                                     KarateClubWeighted()};
  for (const Graph& g : graphs) {
    for (const std::vector<NodeId> removed :
         {std::vector<NodeId>{3}, std::vector<NodeId>{1, 2}}) {
      const SubmatrixIndex index =
          MakeSubmatrixIndex(g.num_nodes(), removed);
      auto factor = SparseLdlt::FactorGrounded(g, index);
      ASSERT_TRUE(factor.ok());
      const double dense = ExactTraceInverseSubmatrix(g, removed);
      EXPECT_NEAR(factor->TraceInverse(), dense, 1e-9 * dense);
    }
  }
}

TEST(SparseLdltTest, InverseDiagonalMatchesDenseInverse) {
  const Graph g = ContiguousUsa();
  const std::vector<NodeId> removed = {4, 17};
  const SubmatrixIndex index = MakeSubmatrixIndex(g.num_nodes(), removed);
  auto factor = SparseLdlt::FactorGrounded(g, index);
  ASSERT_TRUE(factor.ok());
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, removed);
  const Vector diag = factor->InverseDiagonal();
  for (int i = 0; i < factor->dim(); ++i) {
    EXPECT_NEAR(diag[i], inv(i, i), 1e-10 * (1.0 + inv(i, i))) << "i=" << i;
  }
}

TEST(SparseLdltTest, SolveMatrixMatchesColumnSolves) {
  const Graph g = KarateClub();
  const SubmatrixIndex index = MakeSubmatrixIndex(g.num_nodes(), {0});
  auto factor = SparseLdlt::FactorGrounded(g, index);
  ASSERT_TRUE(factor.ok());
  DenseMatrix b(factor->dim(), 3);
  Rng rng(5);
  for (int i = 0; i < b.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) b(i, j) = rng.NextDouble() - 0.5;
  }
  const DenseMatrix x = factor->SolveMatrix(b);
  for (int j = 0; j < b.cols(); ++j) {
    Vector col(static_cast<std::size_t>(b.rows()));
    for (int i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const Vector ref = factor->Solve(col);
    for (int i = 0; i < b.rows(); ++i) EXPECT_DOUBLE_EQ(x(i, j), ref[i]);
  }
}

TEST(SparseLdltTest, PathGraphFactorsWithoutFill) {
  // A path is already a perfect-elimination pattern once RCM lays it out
  // end to end: the strictly-lower factor must hold exactly the n-1
  // pattern edges (symbolic column counts with zero fill).
  const NodeId n = 64;
  const Graph g = PathGraph(n);
  const SubmatrixIndex index = MakeSubmatrixIndex(n, {0});
  auto factor = SparseLdlt::FactorGrounded(g, index);
  ASSERT_TRUE(factor.ok());
  EXPECT_EQ(factor->FactorNonzeros(), factor->dim() - 1);
  EXPECT_EQ(factor->permuted_bandwidth(), 1);
}

TEST(SparseLdltTest, TreeFactorsWithoutFill) {
  // Elimination-tree sanity on a star-of-paths tree: trees admit
  // zero-fill orderings and the symbolic phase must find one through
  // RCM's leaf-first level structure.
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId next = 1;
  for (int arm = 0; arm < 4; ++arm) {
    NodeId prev = 0;
    for (int i = 0; i < 5; ++i) {
      edges.emplace_back(prev, next);
      prev = next++;
    }
  }
  const Graph g = BuildGraph(next, edges);
  const SubmatrixIndex index = MakeSubmatrixIndex(next, {0});
  auto factor = SparseLdlt::FactorGrounded(g, index);
  ASSERT_TRUE(factor.ok());
  // Removing the hub splits the tree into 4 paths of 5 nodes: 16
  // pattern edges and no fill.
  EXPECT_EQ(factor->FactorNonzeros(), 16);
}

TEST(SparseLdltTest, LogDetMatchesDense) {
  const Graph g = KarateClubWeighted();
  const std::vector<NodeId> removed = {2};
  const SubmatrixIndex index = MakeSubmatrixIndex(g.num_nodes(), removed);
  auto factor = SparseLdlt::FactorGrounded(g, index);
  ASSERT_TRUE(factor.ok());
  DenseRef ref = DenseReference(g, removed);
  EXPECT_NEAR(factor->LogDet(), ref.ldlt.LogDet(),
              1e-9 * (1.0 + std::abs(ref.ldlt.LogDet())));
}

TEST(SparseLdltTest, RejectsDisconnectedSubmatrix) {
  // Removing node 0 leaves {2, 3} with no path to the group: L_{-S} is
  // singular and the pivot check must fire, like the dense reference.
  const Graph g = BuildGraph(4, {{0, 1}, {2, 3}});
  const SubmatrixIndex index = MakeSubmatrixIndex(4, {0});
  auto factor = SparseLdlt::FactorGrounded(g, index);
  ASSERT_FALSE(factor.ok());
  EXPECT_EQ(factor.status().code(), StatusCode::kNumericalError);
}

TEST(SparseLdltTest, RejectsEmptySubmatrix) {
  const Graph g = BuildGraph(2, {{0, 1}});
  const SubmatrixIndex index = MakeSubmatrixIndex(2, {0, 1});
  EXPECT_FALSE(SparseLdlt::FactorGrounded(g, index).ok());
}

TEST(SparseLdltTest, OrderingPickedBySymbolicFill) {
  // A path is zero-fill under RCM, and ties keep the pinned RCM band
  // ordering; a scale-free graph is pathological for any band profile,
  // so the symbolic price-out must switch it to minimum degree.
  const Graph path = PathGraph(64);
  auto banded =
      SparseLdlt::FactorGrounded(path, MakeSubmatrixIndex(64, {0}));
  ASSERT_TRUE(banded.ok());
  EXPECT_STREQ(banded->ordering(), "rcm");

  const Graph ba = BarabasiAlbert(800, 3, 4);
  auto local = SparseLdlt::FactorGrounded(
      ba, MakeSubmatrixIndex(ba.num_nodes(), {0}));
  ASSERT_TRUE(local.ok());
  EXPECT_STREQ(local->ordering(), "min_degree");
  // The won ordering must actually be cheap: well under 10% of the
  // dense triangle (RCM fill on this graph is ~half dense).
  const std::int64_t triangle =
      static_cast<std::int64_t>(local->dim()) * (local->dim() - 1) / 2;
  EXPECT_LT(local->FactorNonzeros(), triangle / 10);
}

TEST(SparseLdltTest, FactorMemoryIsAsymptoticallyBelowDense) {
  const Graph g = RandomGeometric(1500, 0.04, 9);
  const SubmatrixIndex index = MakeSubmatrixIndex(g.num_nodes(), {0});
  auto factor = SparseLdlt::FactorGrounded(g, index);
  ASSERT_TRUE(factor.ok());
  const std::int64_t dense_bytes = static_cast<std::int64_t>(factor->dim()) *
                                   factor->dim() *
                                   static_cast<std::int64_t>(sizeof(double));
  EXPECT_LT(factor->MemoryBytes(), dense_bytes / 4);
}

}  // namespace
}  // namespace cfcm
