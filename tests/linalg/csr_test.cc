#include "linalg/csr.h"

#include <tuple>

#include <gtest/gtest.h>

namespace cfcm {
namespace {

TEST(CsrTest, FromTripletsBasic) {
  const CsrMatrix m = CsrMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);
  const DenseMatrix d = m.ToDense();
  EXPECT_EQ(d(0, 0), 1.0);
  EXPECT_EQ(d(0, 2), 2.0);
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(1, 0), 0.0);
}

TEST(CsrTest, DuplicateTripletsAreSummed) {
  const CsrMatrix m =
      CsrMatrix::FromTriplets(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_EQ(m.ToDense()(0, 0), 4.0);
}

TEST(CsrTest, MultiplyMatchesDense) {
  std::vector<std::tuple<int, int, double>> triplets;
  for (int i = 0; i < 6; ++i) {
    triplets.emplace_back(i, (i + 1) % 6, 2.0);
    triplets.emplace_back(i, i, -1.0);
  }
  const CsrMatrix m = CsrMatrix::FromTriplets(6, 6, triplets);
  const DenseMatrix d = m.ToDense();
  Vector x = {1, 2, 3, 4, 5, 6};
  Vector y_sparse;
  m.Multiply(x, &y_sparse);
  const Vector y_dense = d.MultiplyVec(x);
  for (int i = 0; i < 6; ++i) EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-12);
}

TEST(CsrTest, EmptyMatrix) {
  const CsrMatrix m = CsrMatrix::FromTriplets(3, 3, {});
  EXPECT_EQ(m.nnz(), 0);
  Vector y;
  m.Multiply({1, 2, 3}, &y);
  for (double v : y) EXPECT_EQ(v, 0.0);
}

TEST(CsrTest, RectangularMultiply) {
  const CsrMatrix m =
      CsrMatrix::FromTriplets(2, 4, {{0, 3, 1.0}, {1, 0, 2.0}});
  Vector y;
  m.Multiply({1, 0, 0, 5}, &y);
  EXPECT_EQ(y[0], 5.0);
  EXPECT_EQ(y[1], 2.0);
}

}  // namespace
}  // namespace cfcm
