#include "linalg/ldlt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cfcm {
namespace {

DenseMatrix RandomSpd(int n, uint64_t seed) {
  // A = B B^T + n I is SPD.
  Rng rng(seed);
  DenseMatrix b(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) b(i, j) = rng.NextDouble() - 0.5;
  DenseMatrix a = b.Multiply(b.Transpose());
  for (int i = 0; i < n; ++i) a(i, i) += n;
  return a;
}

TEST(LdltTest, SolvesIdentity) {
  auto f = LdltFactorization::Compute(DenseMatrix::Identity(3));
  ASSERT_TRUE(f.ok());
  const Vector x = f->Solve({1, 2, 3});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(LdltTest, SolveMatchesMultiply) {
  const DenseMatrix a = RandomSpd(12, 7);
  auto f = LdltFactorization::Compute(a);
  ASSERT_TRUE(f.ok());
  Vector b(12);
  Rng rng(3);
  for (auto& v : b) v = rng.NextDouble();
  const Vector x = f->Solve(b);
  const Vector ax = a.MultiplyVec(x);
  for (int i = 0; i < 12; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(LdltTest, SolveMatrixMatchesColumnSolves) {
  const DenseMatrix a = RandomSpd(10, 21);
  auto f = LdltFactorization::Compute(a);
  ASSERT_TRUE(f.ok());
  Rng rng(6);
  DenseMatrix b(10, 3);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 3; ++j) b(i, j) = rng.NextDouble() - 0.5;
  }
  const DenseMatrix x = f->SolveMatrix(b);
  for (int j = 0; j < 3; ++j) {
    Vector col(10);
    for (int i = 0; i < 10; ++i) col[i] = b(i, j);
    const Vector ref = f->Solve(col);
    for (int i = 0; i < 10; ++i) EXPECT_NEAR(x(i, j), ref[i], 1e-10);
  }
}

TEST(LdltTest, InverseTimesMatrixIsIdentity) {
  const DenseMatrix a = RandomSpd(9, 11);
  auto f = LdltFactorization::Compute(a);
  ASSERT_TRUE(f.ok());
  const DenseMatrix prod = a.Multiply(f->Inverse());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(prod, DenseMatrix::Identity(9)), 1e-9);
}

TEST(LdltTest, InverseIsSymmetric) {
  const DenseMatrix inv =
      LdltFactorization::Compute(RandomSpd(8, 5))->Inverse();
  EXPECT_LT(DenseMatrix::MaxAbsDiff(inv, inv.Transpose()), 1e-12);
}

TEST(LdltTest, LogDetMatchesKnownDiagonal) {
  DenseMatrix d(3, 3);
  d(0, 0) = 2;
  d(1, 1) = 4;
  d(2, 2) = 8;
  auto f = LdltFactorization::Compute(d);
  ASSERT_TRUE(f.ok());
  EXPECT_NEAR(f->LogDet(), std::log(64.0), 1e-12);
}

TEST(LdltTest, RejectsNonSquare) {
  EXPECT_FALSE(LdltFactorization::Compute(DenseMatrix(2, 3)).ok());
}

TEST(LdltTest, RejectsSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 1;  // rank 1
  auto f = LdltFactorization::Compute(a);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kNumericalError);
}

TEST(LdltTest, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(1, 1) = -1;
  EXPECT_FALSE(LdltFactorization::Compute(a).ok());
}

}  // namespace
}  // namespace cfcm
