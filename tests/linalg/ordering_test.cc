#include "linalg/ordering.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

bool IsPermutation(const std::vector<NodeId>& perm, NodeId n) {
  if (static_cast<NodeId>(perm.size()) != n) return false;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (NodeId p : perm) {
    if (p < 0 || p >= n || seen[p]) return false;
    seen[p] = 1;
  }
  return true;
}

TEST(OrderingTest, ReturnsValidPermutation) {
  for (const Graph& g : {KarateClub(), GridGraph(7, 9), StarGraph(12)}) {
    const std::vector<NodeId> perm = ReverseCuthillMcKee(g);
    EXPECT_TRUE(IsPermutation(perm, g.num_nodes()));
  }
}

TEST(OrderingTest, IsDeterministic) {
  const Graph g = WattsStrogatz(200, 4, 0.1, 7);
  EXPECT_EQ(ReverseCuthillMcKee(g), ReverseCuthillMcKee(g));
}

TEST(OrderingTest, ScrambledPathRecoversBandwidthOne) {
  // A path relabeled by a multiplicative shuffle: the natural labels
  // have large bandwidth, but the path's true bandwidth is 1 and RCM
  // (BFS from a pseudo-peripheral vertex = a path endpoint) must find it.
  const NodeId n = 101;
  std::vector<NodeId> label(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) label[i] = (37 * i + 11) % n;  // bijection
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(label[i], label[i + 1]);
  const Graph g = BuildGraph(n, edges);
  ASSERT_GT(PatternBandwidth(g), 1);
  const std::vector<NodeId> perm = ReverseCuthillMcKee(g);
  EXPECT_EQ(PatternBandwidth(g.num_nodes(), g.offsets(), g.raw_neighbors(),
                             perm),
            1);
}

TEST(OrderingTest, ReducesBandwidthOnStructuredGraphs) {
  // The RCM property the sparse factorization relies on: permuted
  // bandwidth a small multiple of the structural optimum on graphs
  // whose labels carry no locality. (On an already optimally-labeled
  // pattern — row-major grid — RCM's anti-diagonal levels may double
  // the bandwidth; what matters is recovering locality when the input
  // labels have none.)
  const Graph geo = RandomGeometric(400, 0.08, 3);
  {
    const std::vector<NodeId> perm = ReverseCuthillMcKee(geo);
    const NodeId permuted = PatternBandwidth(
        geo.num_nodes(), geo.offsets(), geo.raw_neighbors(), perm);
    // Insertion-order point labels are near-random: natural bandwidth is
    // ~n while RCM recovers the geometric locality.
    EXPECT_LT(permuted, PatternBandwidth(geo) / 4);
    EXPECT_GT(permuted, 0);
  }
  // A 20x20 grid has structural bandwidth 20; under a scrambled
  // labeling RCM must land within a small factor of it.
  const Graph grid = GridGraph(20, 20);
  std::vector<NodeId> scramble(400);
  for (NodeId i = 0; i < 400; ++i) scramble[i] = (171 * i + 5) % 400;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const auto& [u, v] : grid.Edges()) {
    edges.emplace_back(scramble[u], scramble[v]);
  }
  const Graph scrambled = BuildGraph(400, edges);
  const std::vector<NodeId> perm = ReverseCuthillMcKee(scrambled);
  const NodeId rcm_bw = PatternBandwidth(
      scrambled.num_nodes(), scrambled.offsets(), scrambled.raw_neighbors(),
      perm);
  EXPECT_LT(rcm_bw, PatternBandwidth(scrambled) / 4);
  EXPECT_LE(rcm_bw, 40);
}

TEST(OrderingTest, HandlesDisconnectedPatterns) {
  const Graph g = BuildGraph(6, {{0, 1}, {2, 3}, {4, 5}});
  const std::vector<NodeId> perm = ReverseCuthillMcKee(g);
  EXPECT_TRUE(IsPermutation(perm, 6));
}

TEST(OrderingTest, MinimumDegreeReturnsValidPermutation) {
  for (const Graph& g : {KarateClub(), GridGraph(7, 9), StarGraph(12),
                         BarabasiAlbert(300, 3, 1)}) {
    EXPECT_TRUE(IsPermutation(MinimumDegree(g), g.num_nodes()));
  }
  const Graph disconnected = BuildGraph(6, {{0, 1}, {2, 3}, {4, 5}});
  EXPECT_TRUE(IsPermutation(MinimumDegree(disconnected), 6));
  const Graph one = BuildGraph(1, {});
  EXPECT_TRUE(IsPermutation(MinimumDegree(one), 1));
}

TEST(OrderingTest, MinimumDegreeIsDeterministic) {
  const Graph g = BarabasiAlbert(200, 3, 5);
  EXPECT_EQ(MinimumDegree(g), MinimumDegree(g));
}

TEST(OrderingTest, MinimumDegreeEliminatesStarLeavesFirst) {
  // Every leaf has degree 1 against the hub's n-1: min-degree order
  // takes leaves (ascending id on ties) until the hub itself drops to
  // degree 1 — the zero-fill ordering for a star. With the last leaf
  // standing, the hub (smaller id) wins the final degree-1 tie.
  const NodeId n = 12;
  const std::vector<NodeId> perm = MinimumDegree(StarGraph(n));
  ASSERT_TRUE(IsPermutation(perm, n));
  for (NodeId i = 0; i + 2 < n; ++i) EXPECT_EQ(perm[i], i + 1);
  EXPECT_EQ(perm[n - 2], 0);  // StarGraph centers node 0
  EXPECT_EQ(perm[n - 1], n - 1);
}

TEST(OrderingTest, SingleNodeAndEdgeless) {
  const Graph one = BuildGraph(1, {});
  EXPECT_TRUE(IsPermutation(ReverseCuthillMcKee(one), 1));
  EXPECT_EQ(PatternBandwidth(one), 0);
  GraphBuilder b(3);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(IsPermutation(ReverseCuthillMcKee(*g), 3));
}

}  // namespace
}  // namespace cfcm
