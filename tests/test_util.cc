#include "test_util.h"

#include <cassert>
#include <cmath>

#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm::testing {

Graph RandomConnectedGraph(NodeId n, NodeId m_attach, uint64_t seed) {
  return BarabasiAlbert(n, m_attach, seed ^ 0xabcdef12345ULL);
}

std::vector<NamedGraph> PropertyGraphPool() {
  std::vector<NamedGraph> pool;
  pool.push_back({"path16", PathGraph(16)});
  pool.push_back({"cycle17", CycleGraph(17)});
  pool.push_back({"star20", StarGraph(20)});
  pool.push_back({"complete9", CompleteGraph(9)});
  pool.push_back({"grid4x6", GridGraph(4, 6)});
  pool.push_back({"karate", KarateClub()});
  pool.push_back({"contusa", ContiguousUsa()});
  pool.push_back({"ba40", BarabasiAlbert(40, 2, 7)});
  pool.push_back({"ws36", WattsStrogatz(36, 3, 0.2, 11)});
  pool.push_back({"plc45", PowerlawCluster(45, 2, 0.4, 13)});
  return pool;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace cfcm::testing
