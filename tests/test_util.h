// Shared helpers for the cfcm test suites.
#ifndef CFCM_TESTS_TEST_UTIL_H_
#define CFCM_TESTS_TEST_UTIL_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/dense.h"

namespace cfcm::testing {

/// Deterministic connected random graph: BA(n, m_attach) with a seed
/// derived from the arguments; used by property suites.
Graph RandomConnectedGraph(NodeId n, NodeId m_attach, uint64_t seed);

/// Small pool of structurally diverse connected graphs for TEST_P sweeps:
/// path, cycle, star, complete, grid, karate, BA, WS, geometric, ...
struct NamedGraph {
  const char* name;
  Graph graph;
};
std::vector<NamedGraph> PropertyGraphPool();

/// max_u |a[u] - b[u]|.
double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace cfcm::testing

#endif  // CFCM_TESTS_TEST_UTIL_H_
