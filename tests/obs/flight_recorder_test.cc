// Flight recorder (DESIGN.md §15): seqlock ring correctness — field
// round-trips, wrap-around retention, pinning policy, the metrics kill
// switch, and the no-tearing guarantee under writer/reader races.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace cfcm::obs {
namespace {

FlightRecord MakeRecord(const char* op, bool ok, int64_t latency_us) {
  FlightRecord record{};
  record.set_op(op);
  record.set_graph("karate");
  record.set_trace_id("trace-1");
  record.ok = ok ? 1 : 0;
  record.latency_us = latency_us;
  record.queue_wait_us = 3;
  record.epoch = 7;
  if (!ok) record.set_error_code("not_found");
  return record;
}

TEST(FlightRecord, FieldRoundTripAndTruncation) {
  FlightRecord record{};
  record.set_op("solve");
  record.set_graph("a-name-way-longer-than-the-twenty-four-byte-field");
  record.set_trace_id("short");
  record.set_error_code("deadline_exceeded_and_more");
  record.AddSpan("parse", 11);
  record.AddSpan("a-span-name-longer-than-twelve", 22);
  EXPECT_STREQ(record.op, "solve");
  EXPECT_EQ(std::strlen(record.graph), FlightRecord::kGraphBytes - 1);
  EXPECT_STREQ(record.trace_id, "short");
  EXPECT_EQ(std::strlen(record.error_code), FlightRecord::kErrorBytes - 1);
  ASSERT_EQ(record.num_spans, 2);
  EXPECT_STREQ(record.spans[0].name, "parse");
  EXPECT_EQ(record.spans[0].duration_us, 11);
  EXPECT_EQ(std::strlen(record.spans[1].name),
            FlightRecord::kSpanNameBytes - 1);
  // Span slots beyond kMaxSpans are dropped, not overflowed.
  for (int i = 0; i < FlightRecord::kMaxSpans + 3; ++i) {
    record.AddSpan("extra", i);
  }
  EXPECT_EQ(record.num_spans, FlightRecord::kMaxSpans);
}

TEST(FlightRecorder, CommitAndRecentRoundTrip) {
  FlightRecorder recorder{{.capacity = 8, .pinned_capacity = 4}};
  recorder.Commit(MakeRecord("solve", true, 100));
  recorder.Commit(MakeRecord("stats", true, 5));
  EXPECT_EQ(recorder.committed(), 2u);
  const std::vector<FlightRecord> recent = recorder.Recent(10);
  ASSERT_EQ(recent.size(), 2u);
  // Ascending id order; ids are 1-based commit ordinals.
  EXPECT_EQ(recent[0].id, 1u);
  EXPECT_STREQ(recent[0].op, "solve");
  EXPECT_EQ(recent[0].latency_us, 100);
  EXPECT_EQ(recent[0].epoch, 7);
  EXPECT_EQ(recent[1].id, 2u);
  EXPECT_STREQ(recent[1].op, "stats");
  EXPECT_GT(recent[0].mono_ns, 0);
  EXPECT_GT(recent[0].wall_ms, 0);
}

TEST(FlightRecorder, WrapKeepsNewestCapacityRecords) {
  FlightRecorder recorder{{.capacity = 4, .pinned_capacity = 2}};
  for (int i = 1; i <= 10; ++i) {
    recorder.Commit(MakeRecord("solve", true, i));
  }
  const std::vector<FlightRecord> recent = recorder.Recent(10);
  ASSERT_EQ(recent.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(recent[static_cast<std::size_t>(i)].id,
              static_cast<uint64_t>(7 + i));
    EXPECT_EQ(recent[static_cast<std::size_t>(i)].latency_us, 7 + i);
  }
  // Recent(n) with a smaller n trims to the newest n.
  const std::vector<FlightRecord> last_two = recorder.Recent(2);
  ASSERT_EQ(last_two.size(), 2u);
  EXPECT_EQ(last_two[0].id, 9u);
  EXPECT_EQ(last_two[1].id, 10u);
}

TEST(FlightRecorder, PinsErrorsAndSlowRequests) {
  FlightRecorder recorder{
      {.capacity = 8, .pinned_capacity = 8, .slow_us = 1000}};
  recorder.Commit(MakeRecord("solve", true, 10));     // fast ok: not pinned
  recorder.Commit(MakeRecord("solve", false, 10));    // error: pinned
  recorder.Commit(MakeRecord("solve", true, 5000));   // slow: pinned
  const std::vector<FlightRecord> pinned = recorder.Pinned(10);
  ASSERT_EQ(pinned.size(), 2u);
  EXPECT_EQ(pinned[0].ok, 0);
  EXPECT_STREQ(pinned[0].error_code, "not_found");
  EXPECT_EQ(pinned[1].latency_us, 5000);
  // slow_us <= 0 pins errors only.
  FlightRecorder errors_only{
      {.capacity = 8, .pinned_capacity = 8, .slow_us = 0}};
  errors_only.Commit(MakeRecord("solve", true, 1 << 30));
  errors_only.Commit(MakeRecord("solve", false, 1));
  EXPECT_EQ(errors_only.Pinned(10).size(), 1u);
}

TEST(FlightRecorder, PinnedRingSurvivesMainRingChurn) {
  FlightRecorder recorder{
      {.capacity = 4, .pinned_capacity = 4, .slow_us = 1000}};
  recorder.Commit(MakeRecord("solve", false, 10));  // the interesting one
  // 100 fast-ok commits lap the main ring many times over.
  for (int i = 0; i < 100; ++i) {
    recorder.Commit(MakeRecord("solve", true, 1));
  }
  const std::vector<FlightRecord> pinned = recorder.Pinned(10);
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned[0].id, 1u);
  EXPECT_EQ(pinned[0].ok, 0);
  // ...while the main ring only has the newest 4.
  EXPECT_EQ(recorder.Recent(100).size(), 4u);
  EXPECT_EQ(recorder.Recent(100).front().id, 98u);
}

TEST(FlightRecorder, KillSwitchMakesCommitANoOp) {
  FlightRecorder recorder{{.capacity = 8, .pinned_capacity = 4}};
  SetMetricsEnabled(false);
  recorder.Commit(MakeRecord("solve", false, 10));
  SetMetricsEnabled(true);
  EXPECT_EQ(recorder.committed(), 0u);
  EXPECT_TRUE(recorder.Recent(10).empty());
  EXPECT_TRUE(recorder.Pinned(10).empty());
  recorder.Commit(MakeRecord("solve", true, 10));
  EXPECT_EQ(recorder.committed(), 1u);
}

TEST(FlightRecorder, ConcurrentCommitsAndReadsNeverTear) {
  // 8 writers commit records whose fields are all derived from one
  // nonce, while a reader snapshots continuously. A torn read would
  // surface as a record whose fields disagree with each other.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  FlightRecorder recorder{
      {.capacity = 64, .pinned_capacity = 16, .slow_us = 0}};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const FlightRecord& r : recorder.Recent(64)) {
        const int64_t nonce = r.latency_us;
        const std::string op = "op" + std::to_string(nonce % 7);
        if (r.queue_wait_us != nonce * 3 || r.epoch != nonce + 1 ||
            std::strncmp(r.op, op.c_str(), FlightRecord::kOpBytes) != 0) {
          torn.fetch_add(1);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t nonce = static_cast<int64_t>(t) * kPerThread + i;
        FlightRecord record{};
        record.set_op(("op" + std::to_string(nonce % 7)).c_str());
        record.latency_us = nonce;
        record.queue_wait_us = nonce * 3;
        record.epoch = nonce + 1;
        record.ok = 1;
        recorder.Commit(record);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(recorder.committed(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  // After the dust settles the ring holds exactly the newest 64 ids.
  const std::vector<FlightRecord> recent = recorder.Recent(64);
  ASSERT_EQ(recent.size(), 64u);
  EXPECT_EQ(recent.back().id, static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace cfcm::obs
