// TraceContext: span lifecycle, pre-epoch AddSpan, annotation routing,
// top-level span summation, and trace-id uniqueness.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace cfcm::obs {
namespace {

TEST(TraceContext, BeginEndRecordsDuration) {
  TraceContext trace;
  const std::size_t span = trace.BeginSpan("phase");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  trace.EndSpan(span);
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].name, "phase");
  EXPECT_GE(trace.spans()[0].start_ns, 0);
  EXPECT_GT(trace.spans()[0].duration_ns, 0);
  EXPECT_GE(trace.ElapsedNs(), trace.spans()[0].duration_ns);
}

TEST(TraceContext, NestedSpansExcludedFromSpanTotal) {
  // SpanTotalNs sums only top-level spans: an inner span's time is
  // already inside its parent, and double-counting would break the
  // "phase sum ~ total" contract the serve layer exposes.
  TraceContext trace;
  const std::size_t outer = trace.BeginSpan("outer");
  const std::size_t inner = trace.BeginSpan("inner");
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  trace.EndSpan(inner);
  trace.EndSpan(outer);
  ASSERT_EQ(trace.spans().size(), 2u);
  const int64_t outer_ns = trace.spans()[0].duration_ns;
  const int64_t inner_ns = trace.spans()[1].duration_ns;
  EXPECT_GE(outer_ns, inner_ns);
  EXPECT_EQ(trace.SpanTotalNs(), outer_ns);
}

TEST(TraceContext, EndSpanForceClosesOpenChildren) {
  // A must-not-crash guarantee: closing a parent with children still
  // open closes the children too instead of corrupting the stack.
  TraceContext trace;
  const std::size_t outer = trace.BeginSpan("outer");
  (void)trace.BeginSpan("leaked_inner");
  trace.EndSpan(outer);
  ASSERT_EQ(trace.spans().size(), 2u);
  for (const TraceSpan& span : trace.spans()) {
    EXPECT_GE(span.duration_ns, 0) << span.name << " left open";
  }
  // Everything is closed: a new top-level span works normally.
  const std::size_t next = trace.BeginSpan("next");
  trace.EndSpan(next);
  EXPECT_EQ(trace.spans().size(), 3u);
}

TEST(TraceContext, AddSpanPlacesPreEpochPhases) {
  // Socket read and queue wait finish before the handler constructs the
  // context; they are injected with negative start offsets and still
  // count as top-level phases.
  TraceContext trace;
  trace.AddSpan("read", -5000, 4000);
  trace.AddSpan("queue_wait", -1000, 1000);
  const std::size_t handle = trace.BeginSpan("handle");
  trace.EndSpan(handle);
  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[0].start_ns, -5000);
  EXPECT_EQ(trace.SpanTotalNs(),
            4000 + 1000 + trace.spans()[2].duration_ns);
}

TEST(TraceContext, AddSpanClampsNegativeDuration) {
  TraceContext trace;
  trace.AddSpan("weird", 0, -123);
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].duration_ns, 0);
}

TEST(TraceContext, AnnotateTargetsInnermostOpenSpan) {
  TraceContext trace;
  const std::size_t outer = trace.BeginSpan("outer");
  const std::size_t inner = trace.BeginSpan("inner");
  trace.Annotate("walk_steps", 123);  // innermost open: inner
  trace.EndSpan(inner);
  trace.Annotate("forests", 7);  // innermost open is now outer
  trace.EndSpan(outer);
  trace.Annotate("post", 1);  // nothing open: the last recorded span
  ASSERT_EQ(trace.spans().size(), 2u);
  const auto& outer_notes = trace.spans()[0].annotations;
  ASSERT_EQ(outer_notes.size(), 1u);
  EXPECT_EQ(outer_notes[0].first, "forests");
  EXPECT_EQ(outer_notes[0].second, 7);
  const auto& inner_notes = trace.spans()[1].annotations;
  ASSERT_EQ(inner_notes.size(), 2u);
  EXPECT_EQ(inner_notes[0].first, "walk_steps");
  EXPECT_EQ(inner_notes[0].second, 123);
  EXPECT_EQ(inner_notes[1].first, "post");
}

TEST(TraceContext, TraceIdDefaultsNonEmptyAndOverridable) {
  TraceContext trace;
  EXPECT_FALSE(trace.trace_id().empty());
  trace.set_trace_id("client-supplied");
  EXPECT_EQ(trace.trace_id(), "client-supplied");
}

TEST(NextTraceId, UniqueAcrossThreads) {
  // Ids come from an atomic sequence mixed through splitmix64: 16 hex
  // chars, no collisions even when minted concurrently.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 256;
  std::vector<std::vector<std::string>> minted(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&minted, t] {
      for (int i = 0; i < kPerThread; ++i) {
        minted[static_cast<std::size_t>(t)].push_back(NextTraceId());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::set<std::string> unique;
  for (const auto& batch : minted) {
    for (const std::string& id : batch) {
      EXPECT_EQ(id.size(), 16u);
      unique.insert(id);
    }
  }
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace cfcm::obs
