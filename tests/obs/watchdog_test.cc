// Watchdog and SLO burn tracking (DESIGN.md §15): --slo spec parsing,
// burn-rate window math with explicit tick timestamps, the edge cases
// around empty windows, and the sampling thread's lifecycle.
//
// SLO trackers publish gauges into the global registry, so every test
// uses op names unique to this file to avoid crosstalk with other tests
// in the process.
#include "obs/watchdog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cfcm::obs {
namespace {

int64_t BurnShortMilli(const std::string& op) {
  return MetricsRegistry::Global()
      .gauge("serve.slo." + op + ".burn_short_milli")
      .value();
}

int64_t BurnLongMilli(const std::string& op) {
  return MetricsRegistry::Global()
      .gauge("serve.slo." + op + ".burn_long_milli")
      .value();
}

TEST(ParseSloSpec, AcceptsSuffixesAndBareMilliseconds) {
  std::vector<SloObjective> out;
  std::string error;
  ASSERT_TRUE(ParseSloSpec("solve=50ms,mutate=2s,stats=750us,load=80", &out,
                           &error))
      << error;
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].op, "solve");
  EXPECT_EQ(out[0].threshold_us, 50'000);
  EXPECT_EQ(out[1].op, "mutate");
  EXPECT_EQ(out[1].threshold_us, 2'000'000);
  EXPECT_EQ(out[2].op, "stats");
  EXPECT_EQ(out[2].threshold_us, 750);
  EXPECT_EQ(out[3].op, "load");  // bare number = milliseconds
  EXPECT_EQ(out[3].threshold_us, 80'000);
}

TEST(ParseSloSpec, EmptySpecMeansNoObjectives) {
  std::vector<SloObjective> out;
  std::string error;
  EXPECT_TRUE(ParseSloSpec("", &out, &error)) << error;
  EXPECT_TRUE(out.empty());
}

TEST(ParseSloSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"solve", "solve=", "=50ms", "solve=abc",
                          "solve=0ms", "solve=-5ms", "solve=50ms,solve=60ms",
                          "solve=50xs", "solve=50ms,,mutate=2s"}) {
    std::vector<SloObjective> out;
    std::string error;
    EXPECT_FALSE(ParseSloSpec(bad, &out, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(SloTracker, CountsGoodAndBadAgainstThreshold) {
  SloTracker tracker{{{"wdtest_count", 1000}}};
  ASSERT_TRUE(tracker.enabled());
  tracker.Record("wdtest_count", 500, true);    // good: fast + ok
  tracker.Record("wdtest_count", 1000, true);   // good: exactly at threshold
  tracker.Record("wdtest_count", 1500, true);   // bad: too slow
  tracker.Record("wdtest_count", 500, false);   // bad: failed
  tracker.Record("other_op", 1, false);         // no objective: ignored
  auto& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.counter("serve.slo.wdtest_count.good").value(), 2u);
  EXPECT_EQ(registry.counter("serve.slo.wdtest_count.total").value(), 4u);
}

TEST(SloTracker, BurnIsBadFractionOverBudget) {
  // 10% bad over the window with a 1% budget = burn 10.0 = 10000 milli.
  SloTracker tracker{{{"wdtest_burn", 1000}},
                     {.error_budget = 0.01,
                      .short_window_s = 60,
                      .long_window_s = 300}};
  const int64_t t0 = 1'000'000'000;
  tracker.Tick(t0);  // baseline sample (0 good, 0 total)
  for (int i = 0; i < 90; ++i) tracker.Record("wdtest_burn", 1, true);
  for (int i = 0; i < 10; ++i) tracker.Record("wdtest_burn", 1, false);
  tracker.Tick(t0 + 30'000'000'000);  // 30s later: inside both windows
  EXPECT_EQ(BurnShortMilli("wdtest_burn"), 10'000);
  EXPECT_EQ(BurnLongMilli("wdtest_burn"), 10'000);
}

TEST(SloTracker, ShortWindowDecaysBeforeLongWindow) {
  SloTracker tracker{{{"wdtest_decay", 1000}},
                     {.error_budget = 0.01,
                      .short_window_s = 60,
                      .long_window_s = 300}};
  const int64_t second = 1'000'000'000;
  const int64_t t0 = second;
  tracker.Tick(t0);
  // A burst of pure failures...
  for (int i = 0; i < 10; ++i) tracker.Record("wdtest_decay", 1, false);
  tracker.Tick(t0 + 10 * second);
  EXPECT_EQ(BurnShortMilli("wdtest_decay"), 100'000);  // 100% bad / 1%
  // ...then 2 minutes of pure successes: the 60s window no longer sees
  // the burst, the 300s window still does.
  for (int i = 0; i < 110; ++i) tracker.Record("wdtest_decay", 1, true);
  tracker.Tick(t0 + 130 * second);
  EXPECT_EQ(BurnShortMilli("wdtest_decay"), 0);
  EXPECT_GT(BurnLongMilli("wdtest_decay"), 0);
}

TEST(SloTracker, EmptyWindowBurnsNothing) {
  SloTracker tracker{{{"wdtest_idle", 1000}}};
  tracker.Tick(5'000'000'000);
  tracker.Tick(10'000'000'000);  // no requests at all
  EXPECT_EQ(BurnShortMilli("wdtest_idle"), 0);
  EXPECT_EQ(BurnLongMilli("wdtest_idle"), 0);
}

TEST(SloTracker, DisabledWithoutObjectives) {
  SloTracker tracker{{}};
  EXPECT_FALSE(tracker.enabled());
  tracker.Record("anything", 1, true);  // must not crash
  tracker.Tick(1'000'000'000);
}

TEST(Watchdog, TickOncePublishesBuiltInsAndRunsSamplers) {
  Watchdog watchdog{{.interval_ms = 0}};  // passive: no thread
  std::atomic<int> sampled{0};
  watchdog.AddSampler("test", [&] { sampled.fetch_add(1); });
  watchdog.TickOnce();
  watchdog.TickOnce();
  EXPECT_EQ(sampled.load(), 2);
  EXPECT_EQ(watchdog.ticks(), 2u);
  auto& registry = MetricsRegistry::Global();
#if defined(__linux__)
  EXPECT_GT(registry.gauge("process.rss_bytes").value(), 0);
#endif
  EXPECT_GE(registry.gauge("process.uptime_s").value(), 0);
}

TEST(Watchdog, StartAndStopJoinCleanly) {
  Watchdog watchdog{{.interval_ms = 1}};
  std::atomic<int> sampled{0};
  watchdog.AddSampler("test", [&] { sampled.fetch_add(1); });
  watchdog.Start();
  // The loop ticks immediately on start, so one TickOnce from the
  // outside plus the thread's own passes make this >= 1 without sleeps.
  watchdog.TickOnce();
  watchdog.Stop();
  watchdog.Stop();  // idempotent
  EXPECT_GE(sampled.load(), 1);
  const uint64_t after_stop = watchdog.ticks();
  EXPECT_EQ(watchdog.ticks(), after_stop);  // no thread left ticking
}

TEST(ProcessClock, UptimeAndRssAreSane) {
  EXPECT_GT(ProcessStartMonoNs(), 0);
  EXPECT_GE(ProcessUptimeSeconds(), 0);
#if defined(__linux__)
  EXPECT_GT(ProcessRssBytes(), 0);
#endif
}

}  // namespace
}  // namespace cfcm::obs
