// Structured logging: the mono_ns field (DESIGN.md §12/§15) — present
// on every line, parseable, and monotone across consecutive events, so
// log lines order reliably even across NTP steps of the wall clock.
//
// Captures stderr by swapping the underlying fd for a pipe around the
// emission; the log writer uses one fwrite per line, so reads from the
// pipe see whole lines.
#include "obs/log.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace cfcm::obs {
namespace {

// Runs `emit` with stderr redirected into a pipe and returns everything
// it wrote.
std::string CaptureStderr(void (*emit)()) {
  std::fflush(stderr);
  int fds[2];
  EXPECT_EQ(::pipe(fds), 0);
  const int saved = ::dup(STDERR_FILENO);
  EXPECT_GE(saved, 0);
  EXPECT_GE(::dup2(fds[1], STDERR_FILENO), 0);
  ::close(fds[1]);
  emit();
  std::fflush(stderr);
  EXPECT_GE(::dup2(saved, STDERR_FILENO), 0);
  ::close(saved);
  std::string captured;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fds[0], buffer, sizeof(buffer))) > 0) {
    captured.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  return captured;
}

// Extracts the integer after `"mono_ns":`; -1 when absent.
int64_t ExtractMonoNs(const std::string& line, std::size_t from = 0) {
  const std::size_t at = line.find("\"mono_ns\":", from);
  if (at == std::string::npos) return -1;
  return std::strtoll(line.c_str() + at + 10, nullptr, 10);
}

TEST(LogEvent, EmitsMonoNsAfterTs) {
  const std::string captured = CaptureStderr([] {
    LogEvent(LogLevel::kError, "log_test_event").Str("key", "value");
  });
  ASSERT_NE(captured.find("\"event\":\"log_test_event\""), std::string::npos)
      << captured;
  // Field order is fixed: ts, then mono_ns, then level.
  const std::size_t ts_at = captured.find("\"ts\":\"");
  const std::size_t mono_at = captured.find("\"mono_ns\":");
  const std::size_t level_at = captured.find("\"level\":\"error\"");
  ASSERT_NE(ts_at, std::string::npos) << captured;
  ASSERT_NE(mono_at, std::string::npos) << captured;
  ASSERT_NE(level_at, std::string::npos) << captured;
  EXPECT_LT(ts_at, mono_at);
  EXPECT_LT(mono_at, level_at);
  EXPECT_GT(ExtractMonoNs(captured), 0);
}

TEST(LogEvent, MonoNsIsMonotoneAcrossEvents) {
  const std::string captured = CaptureStderr([] {
    LogEvent(LogLevel::kError, "log_test_first");
    LogEvent(LogLevel::kError, "log_test_second");
  });
  const std::size_t second_at = captured.find("\"event\":\"log_test_second\"");
  ASSERT_NE(second_at, std::string::npos) << captured;
  const int64_t first_ns = ExtractMonoNs(captured);
  // The second line starts before its event field; search backwards-safe
  // by scanning from the start of the second line.
  const std::size_t second_line = captured.rfind('{', second_at);
  ASSERT_NE(second_line, std::string::npos);
  const int64_t second_ns = ExtractMonoNs(captured, second_line);
  ASSERT_GT(first_ns, 0);
  ASSERT_GT(second_ns, 0);
  EXPECT_GE(second_ns, first_ns);
}

TEST(LogEvent, DroppedLevelEmitsNothing) {
  const LogLevel saved = MinLogLevel();
  SetMinLogLevel(LogLevel::kWarn);
  const std::string captured = CaptureStderr([] {
    LogEvent(LogLevel::kDebug, "log_test_dropped");
  });
  SetMinLogLevel(saved);
  EXPECT_EQ(captured.find("log_test_dropped"), std::string::npos) << captured;
}

}  // namespace
}  // namespace cfcm::obs
