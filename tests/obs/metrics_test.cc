// Metrics core: conservation under concurrency, log2 bucket edges,
// percentile bounds, the kill switch, and Prometheus rendering.
//
// Histograms and counters here are standalone instances (not the global
// registry) wherever possible, so the assertions are exact regardless of
// what other tests in the process recorded.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

namespace cfcm::obs {
namespace {

TEST(Counter, AddsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Set(-5);
  EXPECT_EQ(gauge.value(), -5);
}

TEST(LatencyHistogram, BucketEdges) {
  // Bucket b holds exactly the values with bit_width == b: bucket 0 is
  // {0}, bucket b >= 1 is [2^(b-1), 2^b - 1]. Probe both sides of every
  // edge the serving latencies actually cross.
  LatencyHistogram histogram;
  const int64_t values[] = {0, 1, 2, 3, 4, 7, 8, 1023, 1024, (1 << 20) - 1};
  for (int64_t v : values) histogram.Record(v);
  const auto snap = histogram.snapshot();
  ASSERT_EQ(snap.count, 10u);
  EXPECT_EQ(snap.buckets[0], 1u);  // 0
  EXPECT_EQ(snap.buckets[1], 1u);  // 1
  EXPECT_EQ(snap.buckets[2], 2u);  // 2, 3
  EXPECT_EQ(snap.buckets[3], 2u);  // 4, 7
  EXPECT_EQ(snap.buckets[4], 1u);  // 8
  EXPECT_EQ(snap.buckets[10], 1u);  // 1023 = 2^10 - 1
  EXPECT_EQ(snap.buckets[11], 1u);  // 1024 = 2^10
  EXPECT_EQ(snap.buckets[20], 1u);  // 2^20 - 1
  EXPECT_EQ(snap.max, (1 << 20) - 1);
}

TEST(LatencyHistogram, NegativeValuesClampToZero) {
  LatencyHistogram histogram;
  histogram.Record(-17);
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.sum, 0);
}

TEST(LatencyHistogram, PercentileBoundsAndMax) {
  LatencyHistogram histogram;
  for (int64_t v = 1; v <= 100; ++v) histogram.Record(v);
  const auto snap = histogram.snapshot();
  ASSERT_EQ(snap.count, 100u);
  // A percentile is the containing bucket's upper edge clamped to the
  // exact max: never below the true order statistic, and strictly less
  // than 2x above it.
  for (double q : {0.5, 0.95, 0.99}) {
    const auto true_rank = static_cast<int64_t>(q * 100);
    const int64_t p = snap.Percentile(q);
    EXPECT_GE(p, true_rank) << "q=" << q;
    EXPECT_LT(p, 2 * true_rank) << "q=" << q;
  }
  EXPECT_EQ(snap.Percentile(1.0), 100);  // clamped to exact max
  EXPECT_EQ(snap.max, 100);
  EXPECT_DOUBLE_EQ(snap.Mean(), 50.5);
}

TEST(LatencyHistogram, EmptySnapshotIsZero) {
  LatencyHistogram histogram;
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Percentile(0.5), 0);
  EXPECT_EQ(snap.Mean(), 0.0);
  EXPECT_EQ(snap.max, 0);
}

TEST(LatencyHistogram, ConcurrentRecordConservesEveryValue) {
  // 8 threads x 10k records race into the sharded histogram; the merged
  // snapshot must conserve the exact count, sum, and per-bucket totals.
  // count is derived from the merged buckets, so this also proves no
  // record landed in the wrong bucket.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  LatencyHistogram histogram;
  std::vector<std::thread> threads;
  std::atomic<int64_t> expected_sum{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, &expected_sum, t] {
      int64_t local_sum = 0;
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t value = (t * kPerThread + i) % 2048;
        histogram.Record(value);
        local_sum += value;
      }
      expected_sum.fetch_add(local_sum);
    });
  }
  for (auto& thread : threads) thread.join();
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.sum, expected_sum.load());
  // Recompute the per-bucket expectation from the value pattern.
  std::array<uint64_t, LatencyHistogram::kBuckets> expected{};
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const auto value = static_cast<uint64_t>((t * kPerThread + i) % 2048);
      ++expected[std::bit_width(value)];
    }
  }
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    EXPECT_EQ(snap.buckets[b], expected[b]) << "bucket " << b;
  }
}

TEST(MetricsEnabled, KillSwitchGatesRecording) {
  LatencyHistogram histogram;
  Counter counter;
  SetMetricsEnabled(false);
  histogram.Record(5);
  counter.Add(5);
  SetMetricsEnabled(true);
  histogram.Record(7);
  counter.Add(7);
  EXPECT_EQ(histogram.snapshot().count, 1u);
  EXPECT_EQ(histogram.snapshot().sum, 7);
  EXPECT_EQ(counter.value(), 7u);
}

TEST(MetricsRegistry, StableReferencesAndSortedSnapshot) {
  MetricsRegistry registry;
  Counter& a = registry.counter("zzz.last");
  Counter& b = registry.counter("aaa.first");
  EXPECT_EQ(&registry.counter("zzz.last"), &a);  // same instance by name
  a.Add(2);
  b.Add(1);
  registry.histogram("mid.hist").Record(9);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "aaa.first");  // deterministic order
  EXPECT_EQ(snap.counters[1].first, "zzz.last");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

TEST(MetricsRegistry, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(RenderPrometheus, EmitsBucketsSumCount) {
  MetricsRegistry registry;
  registry.counter("serve.test.requests").Add(3);
  auto& histogram = registry.histogram("serve.test.latency_us");
  histogram.Record(5);
  histogram.Record(100);
  const std::string text = RenderPrometheus(registry.snapshot());
  // Dots become underscores; histograms render cumulative le-buckets
  // plus _sum/_count; the +Inf bucket must equal the count.
  EXPECT_NE(text.find("serve_test_requests 3"), std::string::npos) << text;
  EXPECT_NE(text.find("serve_test_latency_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_test_latency_us_sum 105"), std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_test_latency_us_count 2"), std::string::npos)
      << text;
}

TEST(RenderPrometheus, EmptyRegistryRendersEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(RenderPrometheus(registry.snapshot()), "");
}

TEST(RenderPrometheus, ZeroSampleHistogramKeepsSumCountConsistent) {
  // A histogram that was registered but never recorded must still emit
  // a coherent exposition: every bucket 0, _sum 0, _count 0, and the
  // +Inf bucket equal to _count (scrapers divide _sum by _count and
  // cross-check +Inf == count; divergence here poisons dashboards).
  MetricsRegistry registry;
  (void)registry.histogram("serve.idle.latency_us");
  const std::string text = RenderPrometheus(registry.snapshot());
  EXPECT_NE(text.find("serve_idle_latency_us_bucket{le=\"+Inf\"} 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_idle_latency_us_sum 0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("serve_idle_latency_us_count 0"), std::string::npos)
      << text;
}

TEST(RenderPrometheus, NegativeGaugeRendersSigned) {
  MetricsRegistry registry;
  registry.gauge("pool.headroom").Set(-42);
  const std::string text = RenderPrometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE pool_headroom gauge\npool_headroom -42\n"),
            std::string::npos)
      << text;
}

TEST(RenderPrometheus, EscapesInvalidNameCharacters) {
  // Dots, dashes and other non-[a-zA-Z0-9_:] characters all map to '_';
  // the HELP line preserves the original dotted spelling.
  MetricsRegistry registry;
  registry.counter("serve.session.graph-a.epoch").Add(4);
  const std::string text = RenderPrometheus(registry.snapshot());
  EXPECT_NE(text.find("serve_session_graph_a_epoch 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP serve_session_graph_a_epoch cfcm metric "
                      "serve.session.graph-a.epoch"),
            std::string::npos)
      << text;
}

TEST(RenderPrometheus, EverySampleHasHelpAndTypePair) {
  MetricsRegistry registry;
  registry.counter("a.requests").Add(1);
  registry.gauge("b.depth").Set(2);
  registry.histogram("c.latency_us").Record(3);
  const std::string text = RenderPrometheus(registry.snapshot());
  for (const char* pname : {"a_requests", "b_depth", "c_latency_us"}) {
    const std::string help = std::string("# HELP ") + pname + " ";
    const std::string type = std::string("# TYPE ") + pname + " ";
    const std::size_t help_at = text.find(help);
    const std::size_t type_at = text.find(type);
    ASSERT_NE(help_at, std::string::npos) << pname << "\n" << text;
    ASSERT_NE(type_at, std::string::npos) << pname << "\n" << text;
    EXPECT_LT(help_at, type_at) << pname;  // HELP immediately precedes TYPE
  }
  EXPECT_NE(text.find("# TYPE a_requests counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE b_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE c_latency_us histogram"), std::string::npos);
}

TEST(RenderPrometheus, CumulativeBucketsAreMonotone) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("mono.latency_us");
  for (int64_t v : {1, 1, 5, 80, 3000, 70000}) histogram.Record(v);
  const std::string text = RenderPrometheus(registry.snapshot());
  // Walk every le-bucket line in order; cumulative counts must be
  // non-decreasing and the +Inf bucket must equal _count.
  uint64_t previous = 0;
  uint64_t inf_value = 0;
  std::size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = text.find("mono_latency_us_bucket{le=\"", pos)) !=
         std::string::npos) {
    const std::size_t value_at = text.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    const uint64_t value = std::strtoull(text.c_str() + value_at + 2,
                                         nullptr, 10);
    EXPECT_GE(value, previous) << text.substr(pos, 64);
    previous = value;
    if (text.compare(pos, 33, "mono_latency_us_bucket{le=\"+Inf\"}") == 0) {
      inf_value = value;
    }
    ++buckets_seen;
    pos = value_at;
  }
  EXPECT_GT(buckets_seen, 1);
  EXPECT_EQ(inf_value, 6u);
  EXPECT_NE(text.find("mono_latency_us_count 6"), std::string::npos) << text;
}

}  // namespace
}  // namespace cfcm::obs
