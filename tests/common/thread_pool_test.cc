#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cfcm {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> order;
  pool.ParallelFor(16, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, SlotSizedParallelForTouchesEachSlot) {
  // The sampling runtime sizes per-executor scratch as slot indices of a
  // ParallelFor; each slot must be visited exactly once.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](std::size_t t) { hits[t].fetch_add(1); });
  for (int t = 0; t < 3; ++t) EXPECT_EQ(hits[t].load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<long long> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(1000, [&](std::size_t i) {
      sum.fetch_add(static_cast<long long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5LL * (999LL * 1000 / 2));
}

TEST(ThreadPoolTest, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The engine runs solve jobs on the session pool and each job runs
  // its sampling batches on the same pool. With more outer iterations
  // than workers, the old blocking Wait() would deadlock; the caller
  // now executes chunks of its own nested loop.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](std::size_t) {
    pool.ParallelFor(16, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, ConcurrentCallersShareThePool) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      pool.ParallelFor(100, [&](std::size_t) { total.fetch_add(1); });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 400);
}

}  // namespace
}  // namespace cfcm
