#include "common/status.h"

#include <gtest/gtest.h>

namespace cfcm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad k").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_FALSE(Status::InvalidArgument("bad k").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::InvalidArgument("k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  ASSERT_TRUE(v.ok());
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto inner = []() { return Status::IoError("disk"); };
  auto outer = [&]() -> Status {
    CFCM_RETURN_IF_ERROR(inner());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIoError);
}

TEST(StatusTest, ReturnIfErrorMacroPassesOk) {
  auto inner = []() { return Status::Ok(); };
  auto outer = [&]() -> Status {
    CFCM_RETURN_IF_ERROR(inner());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cfcm
