#include "common/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace cfcm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LE(same, 1);
}

TEST(RngTest, StreamsAreIndependent) {
  Rng a(7, 0), b(7, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LE(same, 1);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(42);
  for (uint32_t bound : {1u, 2u, 3u, 7u, 100u, 1u << 20}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(2024);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> hist(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++hist[rng.NextBounded(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(hist[b], expected, 5 * std::sqrt(expected));
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolIsFair) {
  Rng rng(77);
  int heads = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) heads += rng.NextBool();
  EXPECT_NEAR(heads, kDraws / 2, 4 * std::sqrt(kDraws / 4.0));
}

TEST(SplitMix64Test, KnownSequenceIsDeterministicAndDistinct) {
  uint64_t state = 42;
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(SplitMix64(&state));
  EXPECT_EQ(seen.size(), 1000u);

  uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(5);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace cfcm
