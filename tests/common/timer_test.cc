#include "common/timer.h"

#include <thread>

#include <gtest/gtest.h>

namespace cfcm {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = timer.Seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(TimerTest, RestartResetsOrigin) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Restart();
  EXPECT_LT(timer.Seconds(), 0.015);
}

TEST(TimerTest, MillisMatchesSeconds) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = timer.Seconds();
  const double ms = timer.Millis();
  EXPECT_NEAR(ms / 1000.0, s, 0.01);
}

TEST(TimerTest, MonotoneNonDecreasing) {
  Timer timer;
  double prev = timer.Seconds();
  for (int i = 0; i < 100; ++i) {
    const double now = timer.Seconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace cfcm
