#include "runtime/mc_runtime.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "graph/datasets.h"

namespace cfcm {
namespace {

// Records the scheduling contract: which forests ran, and the forest
// order of the Accumulate / AccumulateTail commits per shard.
class RecordingKernel final : public ForestKernel {
 public:
  RecordingKernel(NodeId n, int num_shards)
      : n_(n), processed_(1024), commit_order_(num_shards) {}

  std::int64_t ProcessForest(std::size_t slot,
                             std::uint64_t forest_index) override {
    current_[slot] = static_cast<int>(forest_index);
    processed_[forest_index].fetch_add(1);
    return static_cast<std::int64_t>(forest_index) + 1;  // fake walk cost
  }

  void Accumulate(std::size_t slot, NodeId begin, NodeId end) override {
    std::lock_guard<std::mutex> lock(mu_);
    covered_.push_back({begin, end});
    commit_order_[CommitShard(begin)].push_back(current_[slot]);
  }

  void AccumulateTail(std::size_t slot) override {
    std::lock_guard<std::mutex> lock(mu_);
    tail_order_.push_back(current_[slot]);
  }

  int CommitShard(NodeId begin) const {
    // Shard index from its begin node (runtime tiles [0, n) evenly).
    return static_cast<int>(commit_order_.size()) == 1
               ? 0
               : static_cast<int>(begin / shard_width_);
  }

  void set_shard_width(NodeId width) { shard_width_ = width; }

  NodeId n_;
  std::vector<std::atomic<int>> processed_;
  std::vector<int> current_ = std::vector<int>(64, -1);
  std::mutex mu_;
  std::vector<std::pair<NodeId, NodeId>> covered_;
  std::vector<std::vector<int>> commit_order_;  // per shard
  std::vector<int> tail_order_;
  NodeId shard_width_ = 1;
};

TEST(McRuntimeTest, ProcessesEveryForestExactlyOnce) {
  ThreadPool pool(4);
  RecordingKernel kernel(10, 1);
  kernel.set_shard_width(10);
  McRunOptions options;
  options.num_nodes = 10;
  options.chunk_forests = 3;
  options.shard_nodes = 10;
  const McRunStats stats = RunForestBatch(pool, options, 100, 37, kernel);
  EXPECT_EQ(stats.forests, 37);
  EXPECT_EQ(stats.chunks, 13);  // ceil(37 / 3)
  for (int f = 0; f < 1024; ++f) {
    EXPECT_EQ(kernel.processed_[f].load(), (f >= 100 && f < 137) ? 1 : 0)
        << "forest " << f;
  }
}

TEST(McRuntimeTest, WalkStepsAggregateProcessForestReturns) {
  ThreadPool pool(3);
  RecordingKernel kernel(5, 1);
  kernel.set_shard_width(5);
  McRunOptions options;
  options.num_nodes = 5;
  options.chunk_forests = 4;
  options.shard_nodes = 5;
  const McRunStats stats = RunForestBatch(pool, options, 0, 20, kernel);
  // ProcessForest(f) returns f + 1: sum_{f=0}^{19} (f + 1) = 210.
  EXPECT_EQ(stats.walk_steps, 210);
}

TEST(McRuntimeTest, CommitsArriveInForestOrderPerShard) {
  ThreadPool pool(4);
  const NodeId n = 10;
  const NodeId shard_width = 4;  // shards [0,4) [4,8) [8,10)
  RecordingKernel kernel(n, 3);
  kernel.set_shard_width(shard_width);
  McRunOptions options;
  options.num_nodes = n;
  options.chunk_forests = 2;
  options.shard_nodes = shard_width;
  RunForestBatch(pool, options, 0, 64, kernel);

  for (const auto& order : kernel.commit_order_) {
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], static_cast<int>(i)) << "out-of-order commit";
    }
  }
  ASSERT_EQ(kernel.tail_order_.size(), 64u);
  for (std::size_t i = 0; i < kernel.tail_order_.size(); ++i) {
    EXPECT_EQ(kernel.tail_order_[i], static_cast<int>(i));
  }
}

TEST(McRuntimeTest, ShardsTileTheNodeDomain) {
  ThreadPool pool(2);
  RecordingKernel kernel(11, 3);
  kernel.set_shard_width(4);
  McRunOptions options;
  options.num_nodes = 11;
  options.chunk_forests = 8;
  options.shard_nodes = 4;
  RunForestBatch(pool, options, 0, 1, kernel);
  // One forest: its shard commits must tile [0, 11) exactly.
  ASSERT_EQ(kernel.covered_.size(), 3u);
  std::vector<char> seen(11, 0);
  for (const auto& [begin, end] : kernel.covered_) {
    for (NodeId u = begin; u < end; ++u) {
      EXPECT_FALSE(seen[u]) << "node " << u << " covered twice";
      seen[u] = 1;
    }
  }
  for (NodeId u = 0; u < 11; ++u) EXPECT_TRUE(seen[u]);
}

TEST(McRuntimeTest, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  RecordingKernel kernel(4, 1);
  McRunOptions options;
  options.num_nodes = 4;
  const McRunStats stats = RunForestBatch(pool, options, 0, 0, kernel);
  EXPECT_EQ(stats.forests, 0);
  EXPECT_EQ(stats.walk_steps, 0);
}

// A deliberately order-sensitive floating-point reduction: sum of
// 1 / (f + 1)^2 into a single cell. Bitwise equality across pool sizes
// holds only if the runtime really commits in forest order.
class FpSumKernel final : public ForestKernel {
 public:
  std::int64_t ProcessForest(std::size_t slot,
                             std::uint64_t forest_index) override {
    value_[slot] = 1.0 / ((static_cast<double>(forest_index) + 1.0) *
                          (static_cast<double>(forest_index) + 1.0));
    return 1;
  }
  void Accumulate(std::size_t slot, NodeId begin, NodeId end) override {
    (void)begin;
    (void)end;
    sum_ += value_[slot];
  }
  double sum_ = 0.0;

 private:
  double value_[64] = {};
};

TEST(McRuntimeTest, FloatingPointReductionIsThreadCountInvariant) {
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    FpSumKernel kernel;
    McRunOptions options;
    options.num_nodes = 1;
    options.chunk_forests = 4;
    options.shard_nodes = 1;
    RunForestBatch(pool, options, 0, 1000, kernel);
    return kernel.sum_;
  };
  const double reference = run(1);
  for (std::size_t threads : {2u, 4u, 8u}) {
    const double value = run(threads);
    EXPECT_EQ(std::memcmp(&value, &reference, sizeof(double)), 0)
        << "threads=" << threads << " value=" << value
        << " reference=" << reference;
  }
}

TEST(McRuntimeTest, ScratchSlotsCoverPoolPlusCaller) {
  ThreadPool pool(3);
  EXPECT_EQ(McScratchSlots(pool), 4u);
}

}  // namespace
}  // namespace cfcm
