// Thread-count invariance of the sampling stack (DESIGN.md §9).
//
// The sampling runtime commits per-forest statistics in forest-index
// order per node shard, so every estimate — and therefore every greedy
// selection — must be *bitwise* identical at 1, 2 and 8 threads, on
// unit-weighted and weighted graphs alike. EXPECT_EQ on doubles below is
// deliberate: these are exact-equality pins, not tolerances.
#include <vector>

#include <gtest/gtest.h>

#include "cfcm/forest_cfcm.h"
#include "cfcm/schur_cfcm.h"
#include "common/thread_pool.h"
#include "estimators/first_pick.h"
#include "estimators/forest_delta.h"
#include "estimators/schur_delta.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

EstimatorOptions EstOptions(uint64_t seed) {
  EstimatorOptions opts;
  opts.seed = seed;
  opts.max_forests = 256;
  opts.target_forests = 256;
  opts.jl_rows = 12;
  opts.adaptive = false;
  return opts;
}

void ExpectBitwiseEqual(const std::vector<double>& a,
                        const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << "[" << i << "]";
  }
}

class ThreadInvarianceTest : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Threads, ThreadInvarianceTest,
                         ::testing::Values(2u, 8u));

TEST_P(ThreadInvarianceTest, FirstPickScoresBitwiseMatchSingleThread) {
  for (const Graph& g : {ContiguousUsa(), KarateClubWeighted()}) {
    ThreadPool pool1(1), pool_n(GetParam());
    const FirstPickResult a = EstimateFirstPick(g, EstOptions(11), pool1);
    const FirstPickResult b = EstimateFirstPick(g, EstOptions(11), pool_n);
    EXPECT_EQ(a.best, b.best);
    EXPECT_EQ(a.pivot, b.pivot);
    EXPECT_EQ(a.forests, b.forests);
    EXPECT_EQ(a.walk_steps, b.walk_steps);
    ExpectBitwiseEqual(a.scores, b.scores, "scores");
  }
}

TEST_P(ThreadInvarianceTest, ForestDeltaBitwiseMatchesSingleThread) {
  for (const Graph& g : {ContiguousUsa(), KarateClubWeighted()}) {
    ThreadPool pool1(1), pool_n(GetParam());
    const DeltaEstimate a = ForestDelta(g, {0}, EstOptions(21), pool1);
    const DeltaEstimate b = ForestDelta(g, {0}, EstOptions(21), pool_n);
    EXPECT_EQ(a.forests, b.forests);
    EXPECT_EQ(a.walk_steps, b.walk_steps);
    ExpectBitwiseEqual(a.delta, b.delta, "delta");
    ExpectBitwiseEqual(a.z, b.z, "z");
    ExpectBitwiseEqual(a.numerator, b.numerator, "numerator");
  }
}

TEST_P(ThreadInvarianceTest, SchurDeltaBitwiseMatchesSingleThread) {
  for (const Graph& g : {ContiguousUsa(), KarateClubWeighted()}) {
    ThreadPool pool1(1), pool_n(GetParam());
    const std::vector<NodeId> s = {0};
    const std::vector<NodeId> t = {5, 17};  // arbitrary hubs, disjoint from S
    const SchurDeltaEstimate a = SchurDelta(g, s, t, EstOptions(31), pool1);
    const SchurDeltaEstimate b = SchurDelta(g, s, t, EstOptions(31), pool_n);
    EXPECT_EQ(a.forests, b.forests);
    EXPECT_EQ(a.walk_steps, b.walk_steps);
    EXPECT_EQ(a.ridge, b.ridge);
    ExpectBitwiseEqual(a.delta, b.delta, "delta");
    ExpectBitwiseEqual(a.z, b.z, "z");
    ExpectBitwiseEqual(a.numerator, b.numerator, "numerator");
  }
}

// Full-solver invariance, including the adaptive Bernstein exits (the
// per-iteration forest counts pin the convergence decisions too).
void ExpectSolverInvariant(
    const Graph& g, int k,
    StatusOr<CfcmResult> (*solve)(const Graph&, int, const CfcmOptions&)) {
  CfcmOptions base;
  base.seed = 7;
  ThreadPool pool1(1);
  base.pool = &pool1;
  const auto reference = solve(g, k, base);
  ASSERT_TRUE(reference.ok());
  for (std::size_t threads : {2u, 8u}) {
    ThreadPool pool_n(threads);
    CfcmOptions opts = base;
    opts.pool = &pool_n;
    const auto result = solve(g, k, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->selected, reference->selected) << threads << " threads";
    EXPECT_EQ(result->forests_per_iteration,
              reference->forests_per_iteration)
        << threads << " threads";
    EXPECT_EQ(result->total_forests, reference->total_forests);
    EXPECT_EQ(result->total_walk_steps, reference->total_walk_steps);
  }
}

TEST(SolverThreadInvarianceTest, ForestCfcmUnitWeighted) {
  ExpectSolverInvariant(KarateClub(), 4, &ForestCfcmMaximize);
}

TEST(SolverThreadInvarianceTest, ForestCfcmWeighted) {
  ExpectSolverInvariant(KarateClubWeighted(), 4, &ForestCfcmMaximize);
}

TEST(SolverThreadInvarianceTest, ForestCfcmWeightedGrid) {
  ExpectSolverInvariant(AssignUniformWeights(GridGraph(6, 6), 0.25, 4.0, 23),
                        3, &ForestCfcmMaximize);
}

TEST(SolverThreadInvarianceTest, SchurCfcmUnitWeighted) {
  ExpectSolverInvariant(KarateClub(), 4, &SchurCfcmMaximize);
}

TEST(SolverThreadInvarianceTest, SchurCfcmWeighted) {
  ExpectSolverInvariant(KarateClubWeighted(), 4, &SchurCfcmMaximize);
}

TEST(SolverThreadInvarianceTest, NumThreadsKnobIsResultInvariant) {
  // The public knob (shared process pools) must behave like the injected
  // pools above: only speed may change with num_threads.
  const Graph g = ContiguousUsa();
  CfcmOptions one;
  one.seed = 3;
  one.num_threads = 1;
  CfcmOptions eight = one;
  eight.num_threads = 8;
  const auto a = ForestCfcmMaximize(g, 5, one);
  const auto b = ForestCfcmMaximize(g, 5, eight);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->selected, b->selected);
  EXPECT_EQ(a->total_forests, b->total_forests);
  EXPECT_EQ(a->total_walk_steps, b->total_walk_steps);
}

}  // namespace
}  // namespace cfcm
