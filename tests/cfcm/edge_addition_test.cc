#include "cfcm/edge_addition.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "cfcm/cfcc.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace cfcm {
namespace {

// Trace of the augmented graph computed from scratch.
double FreshTrace(const Graph& g, const std::vector<NodeId>& group,
                  const std::vector<std::pair<NodeId, NodeId>>& extra) {
  auto edges = g.Edges();
  edges.insert(edges.end(), extra.begin(), extra.end());
  return ExactTraceInverseSubmatrix(BuildGraph(g.num_nodes(), edges), group);
}

TEST(EdgeAdditionTest, TraceAfterMatchesRefactorization) {
  const Graph g = KarateClub();
  const std::vector<NodeId> group = {0, 33};
  auto result = GreedyEdgeAddition(g, group, 4, EdgeCandidates::kAny);
  ASSERT_TRUE(result.ok());
  std::vector<std::pair<NodeId, NodeId>> sofar;
  for (std::size_t i = 0; i < result->added.size(); ++i) {
    sofar.push_back(result->added[i]);
    const double fresh = FreshTrace(g, group, sofar);
    EXPECT_NEAR(result->trace_after[i], fresh, 1e-8 * fresh) << "i=" << i;
  }
}

TEST(EdgeAdditionTest, FirstPickIsBruteForceOptimalToGroup) {
  const Graph g = ContiguousUsa();
  const std::vector<NodeId> group = {10};
  auto result = GreedyEdgeAddition(g, group, 1, EdgeCandidates::kToGroup);
  ASSERT_TRUE(result.ok());

  double best = 1e300;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 10 || g.HasEdge(u, 10)) continue;
    best = std::min(best, FreshTrace(g, group, {{std::min<NodeId>(u, 10),
                                                 std::max<NodeId>(u, 10)}}));
  }
  EXPECT_NEAR(result->trace_after[0], best, 1e-8 * best);
}

TEST(EdgeAdditionTest, FirstPickIsBruteForceOptimalAnyEdge) {
  const Graph g = ZebraSynthetic();
  const std::vector<NodeId> group = {0};
  auto result = GreedyEdgeAddition(g, group, 1, EdgeCandidates::kAny);
  ASSERT_TRUE(result.ok());

  double best = 1e300;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      if (g.HasEdge(u, v)) continue;
      if (u == 0 && v == 0) continue;
      best = std::min(best, FreshTrace(g, group, {{u, v}}));
    }
  }
  EXPECT_NEAR(result->trace_after[0], best, 1e-8 * best);
}

TEST(EdgeAdditionTest, CfccStrictlyImproves) {
  const Graph g = DolphinsSynthetic();
  const std::vector<NodeId> group = {0, 5};
  auto result = GreedyEdgeAddition(g, group, 6, EdgeCandidates::kAny);
  ASSERT_TRUE(result.ok());
  double prev = result->initial_trace;
  for (double t : result->trace_after) {
    EXPECT_LT(t, prev);  // adding an edge strictly lowers the trace
    prev = t;
  }
}

TEST(EdgeAdditionTest, AddedEdgesAreDistinctNonEdges) {
  const Graph g = KarateClub();
  const std::vector<NodeId> group = {33};
  auto result = GreedyEdgeAddition(g, group, 8, EdgeCandidates::kAny);
  ASSERT_TRUE(result.ok());
  std::vector<std::pair<NodeId, NodeId>> added = result->added;
  for (const auto& [a, b] : added) {
    EXPECT_FALSE(g.HasEdge(a, b)) << a << "," << b;
    EXPECT_LT(a, b);
  }
  std::sort(added.begin(), added.end());
  EXPECT_EQ(std::unique(added.begin(), added.end()), added.end());
}

TEST(EdgeAdditionTest, ToGroupEdgesAllTouchGroup) {
  const Graph g = KarateClub();
  const std::vector<NodeId> group = {0, 33};
  auto result = GreedyEdgeAddition(g, group, 5, EdgeCandidates::kToGroup);
  ASSERT_TRUE(result.ok());
  for (const auto& [a, b] : result->added) {
    EXPECT_TRUE(a == 0 || a == 33 || b == 0 || b == 33);
  }
}

TEST(EdgeAdditionTest, RejectsInvalidArguments) {
  const Graph g = KarateClub();
  EXPECT_FALSE(GreedyEdgeAddition(g, {}, 2).ok());
  EXPECT_FALSE(GreedyEdgeAddition(g, {0}, 0).ok());
  EXPECT_FALSE(
      GreedyEdgeAddition(BuildGraph(4, {{0, 1}, {2, 3}}), {0}, 1).ok());
}

TEST(EdgeAdditionTest, StarGraphToGroupSaturates) {
  // Star with S = {hub}: every node already adjacent to the hub, so no
  // to-group candidate exists.
  const Graph g = StarGraph(8);
  auto result = GreedyEdgeAddition(g, {0}, 1, EdgeCandidates::kToGroup);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cfcm
