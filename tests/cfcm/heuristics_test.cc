#include "cfcm/heuristics.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace cfcm {
namespace {

TEST(DegreeSelectTest, PicksHighestDegrees) {
  const Graph g = KarateClub();
  const auto sel = DegreeSelect(g, 3);
  ASSERT_EQ(sel.size(), 3u);
  EXPECT_EQ(sel[0], 33);  // degree 17
  EXPECT_EQ(sel[1], 0);   // degree 16
  EXPECT_EQ(sel[2], 32);  // degree 12
}

TEST(DegreeSelectTest, TieBreaksBySmallerId) {
  const Graph g = CycleGraph(10);  // all degree 2
  const auto sel = DegreeSelect(g, 4);
  EXPECT_EQ(sel, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(TopCfccExactTest, PicksSmallestPinvDiagonals) {
  const Graph g = ContiguousUsa();
  const auto sel = TopCfccSelectExact(g, 5);
  const DenseMatrix pinv = LaplacianPseudoinverse(g);
  // Verify the selection is exactly the 5 smallest diagonals.
  std::vector<NodeId> order(static_cast<std::size_t>(g.num_nodes()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (pinv(a, a) != pinv(b, b)) return pinv(a, a) < pinv(b, b);
    return a < b;
  });
  for (int i = 0; i < 5; ++i) EXPECT_EQ(sel[i], order[i]);
}

TEST(TopCfccEstimatedTest, AgreesWithExactOnTopPicks) {
  const Graph g = KarateClub();
  CfcmOptions opts;
  opts.seed = 13;
  opts.max_forests = 4096;
  opts.adaptive = false;
  const auto est = TopCfccSelectEstimated(g, 3, opts);
  const auto exact = TopCfccSelectExact(g, 3);
  // The top-3 sets should coincide (order may differ on near-ties).
  std::vector<NodeId> a = est, b = exact;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(HeuristicsTest, SelectionsHaveRequestedSizeAndDistinct) {
  const Graph g = DolphinsSynthetic();
  for (int k : {1, 5, 20}) {
    for (const auto& sel :
         {DegreeSelect(g, k), TopCfccSelectExact(g, k)}) {
      EXPECT_EQ(static_cast<int>(sel.size()), k);
      std::vector<NodeId> sorted = sel;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
    }
  }
}

}  // namespace
}  // namespace cfcm
