#include "cfcm/options.h"

#include <gtest/gtest.h>

namespace cfcm {
namespace {

TEST(CfcmOptionsTest, DefaultsMatchPaperSettings) {
  const CfcmOptions opts;
  EXPECT_DOUBLE_EQ(opts.eps, 0.2);  // the paper's headline epsilon
  EXPECT_TRUE(opts.adaptive);
  EXPECT_EQ(opts.t_size, 0);  // |T*| rule by default
}

TEST(CfcmOptionsTest, LoweringPreservesSamplingKnobs) {
  CfcmOptions opts;
  opts.eps = 0.31;
  opts.seed = 99;
  opts.min_batch = 7;
  opts.max_forests = 555;
  opts.forest_factor = 2.5;
  opts.jl_rows = 33;
  opts.max_jl_rows = 50;
  opts.adaptive = false;

  const EstimatorOptions est = ToEstimatorOptions(opts);
  EXPECT_DOUBLE_EQ(est.eps, 0.31);
  EXPECT_EQ(est.seed, 99u);
  EXPECT_EQ(est.min_batch, 7);
  EXPECT_EQ(est.max_forests, 555);
  EXPECT_DOUBLE_EQ(est.forest_factor, 2.5);
  EXPECT_EQ(est.jl_rows, 33);
  EXPECT_EQ(est.max_jl_rows, 50);
  EXPECT_FALSE(est.adaptive);
}

TEST(CfcmOptionsTest, ResolvedValuesUseLoweredKnobs) {
  CfcmOptions opts;
  opts.eps = 0.2;
  opts.jl_rows = 0;
  opts.max_jl_rows = 16;
  const EstimatorOptions est = ToEstimatorOptions(opts);
  EXPECT_LE(ResolveJlRows(est, 100000), 16);
}

}  // namespace
}  // namespace cfcm
