// Pins the tentpole contract of DESIGN.md §14: the factor-based
// backends (sparse_ldlt, cg) must reproduce the dense reference on
// every pinned graph — identical selections, scalars to ~1e-9 relative.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "cfcm/edge_addition.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/optimum.h"
#include "cfcm/options.h"
#include "graph/datasets.h"
#include "linalg/solver.h"

namespace cfcm {
namespace {

std::vector<Graph> PinnedGraphs() {
  std::vector<Graph> graphs;
  graphs.push_back(KarateClub());
  graphs.push_back(ContiguousUsa());
  graphs.push_back(ZebraSynthetic());
  graphs.push_back(DolphinsSynthetic());
  graphs.push_back(KarateClubWeighted());
  return graphs;
}

CfcmOptions WithBackend(SolverBackend backend) {
  CfcmOptions options;
  options.solver_backend = backend;
  return options;
}

TEST(BackendAgreementTest, ExactGreedySparseMatchesDense) {
  for (const Graph& g : PinnedGraphs()) {
    const int k = 4;
    auto dense = ExactGreedyMaximize(g, k, WithBackend(SolverBackend::kDense));
    auto sparse =
        ExactGreedyMaximize(g, k, WithBackend(SolverBackend::kSparseLdlt));
    ASSERT_TRUE(dense.ok() && sparse.ok());
    EXPECT_EQ(dense->backend, SolverBackend::kDense);
    EXPECT_EQ(sparse->backend, SolverBackend::kSparseLdlt);
    EXPECT_EQ(sparse->selected, dense->selected) << "n=" << g.num_nodes();
    ASSERT_EQ(sparse->trace_after.size(), dense->trace_after.size());
    for (std::size_t i = 0; i < dense->trace_after.size(); ++i) {
      EXPECT_NEAR(sparse->trace_after[i], dense->trace_after[i],
                  1e-9 * dense->trace_after[i])
          << "n=" << g.num_nodes() << " i=" << i;
    }
  }
}

TEST(BackendAgreementTest, ExactGreedyCgMatchesDense) {
  // CG carries its own solve tolerance; selections must still match and
  // the traces agree to a looser epsilon.
  for (const Graph& g : {KarateClub(), ContiguousUsa()}) {
    const int k = 3;
    auto dense = ExactGreedyMaximize(g, k, WithBackend(SolverBackend::kDense));
    auto cg = ExactGreedyMaximize(g, k, WithBackend(SolverBackend::kCg));
    ASSERT_TRUE(dense.ok() && cg.ok());
    EXPECT_EQ(cg->selected, dense->selected);
    for (std::size_t i = 0; i < dense->trace_after.size(); ++i) {
      EXPECT_NEAR(cg->trace_after[i], dense->trace_after[i],
                  1e-4 * dense->trace_after[i]);
    }
  }
}

TEST(BackendAgreementTest, ExactGreedyKOneTraceMatches) {
  const Graph g = KarateClub();
  auto dense = ExactGreedyMaximize(g, 1, WithBackend(SolverBackend::kDense));
  auto sparse =
      ExactGreedyMaximize(g, 1, WithBackend(SolverBackend::kSparseLdlt));
  ASSERT_TRUE(dense.ok() && sparse.ok());
  EXPECT_EQ(sparse->selected, dense->selected);
  ASSERT_EQ(sparse->trace_after.size(), 1u);
  EXPECT_NEAR(sparse->trace_after[0], dense->trace_after[0],
              1e-9 * dense->trace_after[0]);
}

TEST(BackendAgreementTest, OptimumSparseMatchesDense) {
  // Exhaustive search scores every C(n, k) subset, so any backend
  // disagreement anywhere in the subset lattice would flip the argmin.
  for (const Graph& g : {KarateClub(), KarateClubWeighted()}) {
    const int k = 2;
    auto dense = OptimumSearch(g, k, WithBackend(SolverBackend::kDense));
    auto sparse = OptimumSearch(g, k, WithBackend(SolverBackend::kSparseLdlt));
    ASSERT_TRUE(dense.ok() && sparse.ok());
    EXPECT_EQ(dense->backend, SolverBackend::kDense);
    EXPECT_EQ(sparse->backend, SolverBackend::kSparseLdlt);
    EXPECT_EQ(sparse->best, dense->best);
    EXPECT_NEAR(sparse->trace, dense->trace, 1e-9 * dense->trace);
    EXPECT_NEAR(sparse->cfcc, dense->cfcc, 1e-9 * dense->cfcc);
    EXPECT_EQ(sparse->subsets_evaluated, dense->subsets_evaluated);
  }
}

TEST(BackendAgreementTest, EdgeAdditionSparseMatchesDense) {
  for (const Graph& g : PinnedGraphs()) {
    const std::vector<NodeId> group = {0, 5};
    const int k = 3;
    auto dense = GreedyEdgeAddition(g, group, k, EdgeCandidates::kToGroup,
                                    WithBackend(SolverBackend::kDense));
    auto sparse = GreedyEdgeAddition(g, group, k, EdgeCandidates::kToGroup,
                                     WithBackend(SolverBackend::kSparseLdlt));
    ASSERT_TRUE(dense.ok() && sparse.ok());
    EXPECT_EQ(sparse->backend, SolverBackend::kSparseLdlt);
    EXPECT_EQ(sparse->added, dense->added) << "n=" << g.num_nodes();
    EXPECT_NEAR(sparse->initial_trace, dense->initial_trace,
                1e-9 * dense->initial_trace);
    ASSERT_EQ(sparse->trace_after.size(), dense->trace_after.size());
    for (std::size_t i = 0; i < dense->trace_after.size(); ++i) {
      EXPECT_NEAR(sparse->trace_after[i], dense->trace_after[i],
                  1e-9 * dense->trace_after[i])
          << "n=" << g.num_nodes() << " i=" << i;
    }
  }
}

TEST(BackendAgreementTest, EdgeAdditionCgMatchesDense) {
  const Graph g = KarateClub();
  const std::vector<NodeId> group = {0, 33};
  auto dense = GreedyEdgeAddition(g, group, 2, EdgeCandidates::kToGroup,
                                  WithBackend(SolverBackend::kDense));
  auto cg = GreedyEdgeAddition(g, group, 2, EdgeCandidates::kToGroup,
                               WithBackend(SolverBackend::kCg));
  ASSERT_TRUE(dense.ok() && cg.ok());
  EXPECT_EQ(cg->added, dense->added);
  for (std::size_t i = 0; i < dense->trace_after.size(); ++i) {
    EXPECT_NEAR(cg->trace_after[i], dense->trace_after[i],
                1e-4 * dense->trace_after[i]);
  }
}

TEST(BackendAgreementTest, EdgeAdditionAnyCandidatesForcesDense) {
  // M_uv off-diagonals are only available densely; an explicit sparse
  // request on kAny still runs (and reports) the dense kernel.
  const Graph g = KarateClub();
  auto result = GreedyEdgeAddition(g, {0, 33}, 1, EdgeCandidates::kAny,
                                   WithBackend(SolverBackend::kSparseLdlt));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->backend, SolverBackend::kDense);
}

TEST(BackendAgreementTest, AutoResolvesDenseOnSmallGraphs) {
  auto result =
      ExactGreedyMaximize(KarateClub(), 2, WithBackend(SolverBackend::kAuto));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->backend, SolverBackend::kDense);
}

}  // namespace
}  // namespace cfcm
