#include "cfcm/schur_cfcm.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

CfcmOptions TestOptions(int max_forests = 2048) {
  CfcmOptions opts;
  opts.eps = 0.2;
  opts.seed = 19;
  opts.num_threads = 2;
  opts.max_forests = max_forests;
  opts.forest_factor = 8.0;
  opts.jl_rows = 48;
  return opts;
}

TEST(SelectAuxiliaryRootsTest, PicksHubsFirst) {
  const Graph g = KarateClub();
  const auto t = SelectAuxiliaryRoots(g, 10);
  ASSERT_GE(t.size(), 1u);
  EXPECT_EQ(t[0], 33);  // global max degree
}

TEST(SelectAuxiliaryRootsTest, RespectsCap) {
  const Graph g = BarabasiAlbert(200, 3, 7);
  const auto t = SelectAuxiliaryRoots(g, 5);
  EXPECT_LE(t.size(), 5u);
}

TEST(SelectAuxiliaryRootsTest, SizeBalancesAgainstRemainingDmax) {
  // |T*| = argmin |{|T| - dmax(T)}|: verify against a direct recompute
  // over every prefix of the same removal order.
  const Graph g = BarabasiAlbert(150, 2, 9);
  const auto t = SelectAuxiliaryRoots(g, 40);
  const auto order = HubRemovalOrder(g, 40);

  auto dmax_after_removing = [&](int prefix) {
    std::vector<char> gone(static_cast<std::size_t>(g.num_nodes()), 0);
    for (int i = 0; i < prefix; ++i) gone[order[i]] = 1;
    NodeId best = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (gone[u]) continue;
      NodeId d = 0;
      for (NodeId v : g.neighbors(u)) d += !gone[v];
      best = std::max(best, d);
    }
    return best;
  };
  int arg_best = 1;
  int best_value = std::abs(1 - dmax_after_removing(1));
  for (int size = 2; size <= 40; ++size) {
    const int value = std::abs(size - dmax_after_removing(size));
    if (value < best_value) {
      best_value = value;
      arg_best = size;
    }
  }
  EXPECT_EQ(static_cast<int>(t.size()), arg_best);
  // The prefix must match the removal order.
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], order[i]);
}

TEST(SelectAuxiliaryRootsTest, BalancePointIsNontrivialOnScaleFree) {
  // On scale-free graphs the balance point sits well above 1 (the
  // h-index of the degree sequence), which is what gives SchurCFCM its
  // sampling speedup.
  const Graph g = BarabasiAlbert(2000, 3, 17);
  const auto t = SelectAuxiliaryRoots(g, 4096);
  EXPECT_GE(t.size(), 5u);
  EXPECT_LE(t.size(), 200u);
}

TEST(SchurCfcmTest, NearExactQualityOnKarate) {
  const Graph g = KarateClub();
  auto schur = SchurCfcmMaximize(g, 5, TestOptions());
  auto exact = ExactGreedyMaximize(g, 5);
  ASSERT_TRUE(schur.ok() && exact.ok());
  EXPECT_GE(ExactGroupCfcc(g, schur->selected),
            0.93 * ExactGroupCfcc(g, exact->selected));
}

TEST(SchurCfcmTest, NearExactQualityOnBaGraph) {
  const Graph g = BarabasiAlbert(120, 2, 3);
  auto schur = SchurCfcmMaximize(g, 5, TestOptions());
  auto exact = ExactGreedyMaximize(g, 5);
  ASSERT_TRUE(schur.ok() && exact.ok());
  EXPECT_GE(ExactGroupCfcc(g, schur->selected),
            0.93 * ExactGroupCfcc(g, exact->selected));
}

TEST(SchurCfcmTest, SelectsKDistinctNodes) {
  const Graph g = DolphinsSynthetic();
  auto result = SchurCfcmMaximize(g, 12, TestOptions(256));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->selected.size(), 12u);
  std::vector<NodeId> sorted = result->selected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(SchurCfcmTest, DeterministicInSeed) {
  const Graph g = ContiguousUsa();
  auto a = SchurCfcmMaximize(g, 4, TestOptions(256));
  auto b = SchurCfcmMaximize(g, 4, TestOptions(256));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->selected, b->selected);
}

TEST(SchurCfcmTest, FixedTSizeIsHonored) {
  const Graph g = BarabasiAlbert(100, 2, 5);
  CfcmOptions opts = TestOptions(128);
  opts.t_size = 7;
  auto result = SchurCfcmMaximize(g, 3, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->auxiliary_roots, 7);
}

TEST(SchurCfcmTest, SamplesFewerWalkStepsThanForestInPractice) {
  // Not a strict invariant per-run, but with hubs grounded the Schur
  // variant should never need *more* forests than the cap while keeping
  // quality; here we simply verify both run and report diagnostics.
  const Graph g = BarabasiAlbert(150, 3, 13);
  auto schur = SchurCfcmMaximize(g, 4, TestOptions(128));
  ASSERT_TRUE(schur.ok());
  EXPECT_GT(schur->auxiliary_roots, 0);
  EXPECT_EQ(schur->forests_per_iteration.size(), 4u);
}

TEST(SchurCfcmTest, RejectsInvalidInput) {
  EXPECT_FALSE(SchurCfcmMaximize(KarateClub(), -1, TestOptions()).ok());
  EXPECT_FALSE(
      SchurCfcmMaximize(BuildGraph(4, {{0, 1}, {2, 3}}), 2, TestOptions())
          .ok());
}

}  // namespace
}  // namespace cfcm
