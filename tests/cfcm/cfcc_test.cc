#include "cfcm/cfcc.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace cfcm {
namespace {

TEST(CfccTest, PathGraphSingleNodeKnownValue) {
  // Path 0-1-2 grounded at {1}: L_{-S}^{-1} = I (two isolated unit
  // resistors), trace = 2, C = 3/2.
  const Graph g = PathGraph(3);
  EXPECT_NEAR(ExactNodeCfcc(g, 1), 1.5, 1e-12);
  // Grounded at an end node: trace = 2 + ... path resistances 1 and 2,
  // actually Tr = (1)+(2)... R(1,{0})=1, R(2,{0})=2 → trace 3, C = 1.
  EXPECT_NEAR(ExactNodeCfcc(g, 0), 1.0, 1e-12);
}

TEST(CfccTest, CompleteGraphSymmetry) {
  const Graph g = CompleteGraph(6);
  const double c0 = ExactNodeCfcc(g, 0);
  for (NodeId u = 1; u < 6; ++u) {
    EXPECT_NEAR(ExactNodeCfcc(g, u), c0, 1e-12);
  }
}

TEST(CfccTest, GroupCfccGrowsWithGroup) {
  const Graph g = KarateClub();
  const double c1 = ExactGroupCfcc(g, {0});
  const double c2 = ExactGroupCfcc(g, {0, 33});
  const double c3 = ExactGroupCfcc(g, {0, 33, 16});
  EXPECT_GT(c2, c1);
  EXPECT_GT(c3, c2);
}

TEST(CfccTest, MatchesDefinitionViaResistanceSum) {
  // C(S) = n / sum_u R(u, S) with R(u,S) = (L_{-S}^{-1})_uu.
  const Graph g = ContiguousUsa();
  const std::vector<NodeId> s = {3, 30};
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, s);
  double sum_r = 0;
  for (int i = 0; i < inv.rows(); ++i) sum_r += inv(i, i);
  EXPECT_NEAR(ExactGroupCfcc(g, s),
              static_cast<double>(g.num_nodes()) / sum_r, 1e-10);
}

TEST(CfccTest, SingleNodeFormulaViaPseudoinverse) {
  // C(u) = n / (Tr(L†) + n L†_uu) — the paper's Section II-D identity.
  const Graph g = KarateClub();
  const DenseMatrix pinv = LaplacianPseudoinverse(g);
  const double trace_pinv = pinv.Trace();
  const double n = g.num_nodes();
  for (NodeId u : {0, 7, 19, 33}) {
    const double via_pinv = n / (trace_pinv + n * pinv(u, u));
    EXPECT_NEAR(ExactNodeCfcc(g, u), via_pinv, 1e-9) << "u=" << u;
  }
}

TEST(CfccTest, PrefixTracesMatchFreshFactorizations) {
  const Graph g = KarateClub();
  const std::vector<NodeId> order = {33, 0, 16, 5, 24};
  const auto traces = ExactPrefixTraces(g, order);
  ASSERT_EQ(traces.size(), order.size());
  std::vector<NodeId> prefix;
  for (std::size_t i = 0; i < order.size(); ++i) {
    prefix.push_back(order[i]);
    EXPECT_NEAR(traces[i], ExactTraceInverseSubmatrix(g, prefix),
                1e-8 * traces[i])
        << "prefix " << i;
  }
}

TEST(CfccTest, PrefixTracesArbitraryOrderNotJustGreedy) {
  // Downdates must be order-correct even for a deliberately bad order.
  const Graph g = ContiguousUsa();
  const std::vector<NodeId> order = {48, 2, 31, 7};
  const auto traces = ExactPrefixTraces(g, order);
  std::vector<NodeId> prefix;
  for (std::size_t i = 0; i < order.size(); ++i) {
    prefix.push_back(order[i]);
    EXPECT_NEAR(traces[i], ExactTraceInverseSubmatrix(g, prefix),
                1e-8 * traces[i]);
  }
}

TEST(CfccTest, ApproximateMatchesExact) {
  const Graph g = KarateClub();
  const std::vector<NodeId> s = {0, 33};
  const double exact = ExactGroupCfcc(g, s);
  const ApproxCfcc approx = ApproximateGroupCfcc(g, s, 512, 9);
  EXPECT_NEAR(approx.cfcc, exact, 0.05 * exact);
  EXPECT_GT(approx.trace_std_error, 0.0);
}

TEST(CfccValidationTest, AcceptsValidArguments) {
  EXPECT_TRUE(ValidateCfcmArguments(KarateClub(), 5).ok());
}

TEST(CfccValidationTest, RejectsBadK) {
  const Graph g = KarateClub();
  EXPECT_EQ(ValidateCfcmArguments(g, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateCfcmArguments(g, -2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateCfcmArguments(g, 34).code(), StatusCode::kInvalidArgument);
}

TEST(CfccValidationTest, RejectsDisconnectedGraph) {
  const Graph g = BuildGraph(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(ValidateCfcmArguments(g, 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CfccValidationTest, RejectsTinyGraph) {
  const Graph g = BuildGraph(1, {});
  EXPECT_FALSE(ValidateCfcmArguments(g, 1).ok());
}

}  // namespace
}  // namespace cfcm
