#include "cfcm/forest_cfcm.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

CfcmOptions TestOptions(int max_forests = 2048) {
  CfcmOptions opts;
  opts.eps = 0.2;
  opts.seed = 17;
  opts.num_threads = 2;
  opts.max_forests = max_forests;
  opts.forest_factor = 8.0;  // tests favor accuracy over speed
  opts.jl_rows = 48;
  return opts;
}

TEST(ForestCfcmTest, NearExactQualityOnKarate) {
  const Graph g = KarateClub();
  auto forest = ForestCfcmMaximize(g, 5, TestOptions());
  auto exact = ExactGreedyMaximize(g, 5);
  ASSERT_TRUE(forest.ok() && exact.ok());
  EXPECT_GE(ExactGroupCfcc(g, forest->selected),
            0.93 * ExactGroupCfcc(g, exact->selected));
}

TEST(ForestCfcmTest, NearExactQualityOnContUsa) {
  const Graph g = ContiguousUsa();
  auto forest = ForestCfcmMaximize(g, 4, TestOptions());
  auto exact = ExactGreedyMaximize(g, 4);
  ASSERT_TRUE(forest.ok() && exact.ok());
  EXPECT_GE(ExactGroupCfcc(g, forest->selected),
            0.93 * ExactGroupCfcc(g, exact->selected));
}

TEST(ForestCfcmTest, SelectsKDistinctNodes) {
  const Graph g = DolphinsSynthetic();
  auto result = ForestCfcmMaximize(g, 10, TestOptions(256));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->selected.size(), 10u);
  std::vector<NodeId> sorted = result->selected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(ForestCfcmTest, ReportsDiagnostics) {
  const Graph g = KarateClub();
  auto result = ForestCfcmMaximize(g, 3, TestOptions(128));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->forests_per_iteration.size(), 3u);
  EXPECT_GT(result->total_forests, 0);
  EXPECT_GT(result->jl_rows, 0);
  EXPECT_GT(result->seconds, 0.0);
}

TEST(ForestCfcmTest, DeterministicInSeed) {
  const Graph g = ContiguousUsa();
  auto a = ForestCfcmMaximize(g, 4, TestOptions(256));
  auto b = ForestCfcmMaximize(g, 4, TestOptions(256));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->selected, b->selected);
}

TEST(ForestCfcmTest, DeterministicAcrossThreadCounts) {
  const Graph g = KarateClub();
  CfcmOptions one = TestOptions(256);
  one.num_threads = 1;
  CfcmOptions four = TestOptions(256);
  four.num_threads = 4;
  auto a = ForestCfcmMaximize(g, 3, one);
  auto b = ForestCfcmMaximize(g, 3, four);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->selected, b->selected);
}

TEST(ForestCfcmTest, K1MatchesBestSingleNode) {
  const Graph g = KarateClub();
  auto result = ForestCfcmMaximize(g, 1, TestOptions());
  ASSERT_TRUE(result.ok());
  double best = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    best = std::max(best, ExactGroupCfcc(g, {u}));
  }
  EXPECT_GE(ExactGroupCfcc(g, result->selected), 0.97 * best);
}

TEST(ForestCfcmTest, RejectsInvalidInput) {
  EXPECT_FALSE(ForestCfcmMaximize(KarateClub(), 0, TestOptions()).ok());
  EXPECT_FALSE(ForestCfcmMaximize(KarateClub(), 34, TestOptions()).ok());
  EXPECT_FALSE(
      ForestCfcmMaximize(BuildGraph(4, {{0, 1}, {2, 3}}), 2, TestOptions())
          .ok());
}

TEST(ForestCfcmTest, BeatsDegreeHeuristicOnKarate) {
  // The paper's headline quality claim at small scale.
  const Graph g = KarateClub();
  auto result = ForestCfcmMaximize(g, 5, TestOptions());
  ASSERT_TRUE(result.ok());
  std::vector<NodeId> degree_sel = {33, 0, 32, 2, 1};
  EXPECT_GT(ExactGroupCfcc(g, result->selected),
            ExactGroupCfcc(g, degree_sel));
}

}  // namespace
}  // namespace cfcm
