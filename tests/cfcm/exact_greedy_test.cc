#include "cfcm/exact_greedy.h"

#include <gtest/gtest.h>

#include "cfcm/cfcc.h"
#include "cfcm/optimum.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace cfcm {
namespace {

TEST(ExactGreedyTest, FirstPickIsPseudoinverseArgmin) {
  const Graph g = KarateClub();
  auto result = ExactGreedyMaximize(g, 1);
  ASSERT_TRUE(result.ok());
  const DenseMatrix pinv = LaplacianPseudoinverse(g);
  NodeId best = 0;
  for (NodeId u = 1; u < g.num_nodes(); ++u) {
    if (pinv(u, u) < pinv(best, best)) best = u;
  }
  EXPECT_EQ(result->selected[0], best);
}

TEST(ExactGreedyTest, TraceAfterMatchesRefactorization) {
  // The Sherman–Morrison downdates must agree with fresh dense traces.
  const Graph g = ContiguousUsa();
  auto result = ExactGreedyMaximize(g, 4);
  ASSERT_TRUE(result.ok());
  std::vector<NodeId> prefix;
  for (int i = 0; i < 4; ++i) {
    prefix.push_back(result->selected[i]);
    const double fresh = ExactTraceInverseSubmatrix(g, prefix);
    EXPECT_NEAR(result->trace_after[i], fresh, 1e-8 * fresh) << "i=" << i;
  }
}

TEST(ExactGreedyTest, GainsAreGreedyOptimalEachStep) {
  // At every step the chosen node must have the (near-)largest true gain.
  const Graph g = KarateClub();
  auto result = ExactGreedyMaximize(g, 3);
  ASSERT_TRUE(result.ok());
  std::vector<NodeId> prefix;
  for (int i = 0; i < 3; ++i) {
    const double chosen_trace = result->trace_after[i];
    // Compare against all alternatives for this step.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (std::find(prefix.begin(), prefix.end(), u) != prefix.end() ||
          u == result->selected[i]) {
        continue;
      }
      std::vector<NodeId> alt = prefix;
      alt.push_back(u);
      EXPECT_LE(chosen_trace,
                ExactTraceInverseSubmatrix(g, alt) + 1e-9)
          << "step " << i << " alternative " << u;
    }
    prefix.push_back(result->selected[i]);
  }
}

TEST(ExactGreedyTest, NearOptimalOnTinyGraphs) {
  // Greedy achieves (1 - k/(k-1)/e) of optimum; in practice it is
  // essentially optimal on these graphs (paper Fig. 1).
  for (int k : {2, 3}) {
    const Graph g = ZebraSynthetic();
    auto greedy = ExactGreedyMaximize(g, k);
    auto opt = OptimumSearch(g, k);
    ASSERT_TRUE(greedy.ok() && opt.ok());
    const double c_greedy = ExactGroupCfcc(g, greedy->selected);
    EXPECT_GE(c_greedy, 0.95 * opt->cfcc) << "k=" << k;
  }
}

TEST(ExactGreedyTest, SelectsDistinctNodes) {
  const Graph g = DolphinsSynthetic();
  auto result = ExactGreedyMaximize(g, 10);
  ASSERT_TRUE(result.ok());
  std::vector<NodeId> sorted = result->selected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(ExactGreedyTest, TraceIsStrictlyDecreasing) {
  const Graph g = KarateClub();
  auto result = ExactGreedyMaximize(g, 6);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 1; i < result->trace_after.size(); ++i) {
    EXPECT_LT(result->trace_after[i], result->trace_after[i - 1]);
  }
}

TEST(ExactGreedyTest, RejectsInvalidArguments) {
  EXPECT_FALSE(ExactGreedyMaximize(KarateClub(), 0).ok());
  EXPECT_FALSE(ExactGreedyMaximize(BuildGraph(4, {{0, 1}, {2, 3}}), 2).ok());
}

}  // namespace
}  // namespace cfcm
