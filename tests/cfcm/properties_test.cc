// Property-based parameterized suites over a pool of structurally
// diverse graphs and seeds: the mathematical invariants the paper's
// algorithms rely on must hold on every instance.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/optimum.h"
#include "common/rng.h"
#include "graph/bfs.h"
#include "graph/builder.h"
#include "graph/components.h"
#include "graph/diameter.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "linalg/ldlt.h"
#include "linalg/schur_exact.h"
#include "test_util.h"

namespace cfcm {
namespace {

using cfcm::testing::NamedGraph;
using cfcm::testing::PropertyGraphPool;

class GraphPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  const Graph& graph() const { return pool()[GetParam()].graph; }
  const char* name() const { return pool()[GetParam()].name; }

  static const std::vector<NamedGraph>& pool() {
    static const std::vector<NamedGraph>* kPool =
        new std::vector<NamedGraph>(PropertyGraphPool());
    return *kPool;
  }
};

TEST_P(GraphPropertyTest, ResistanceDistanceIsAMetric) {
  const Graph& g = graph();
  const DenseMatrix pinv = LaplacianPseudoinverse(g);
  auto r = [&](NodeId i, NodeId j) {
    return pinv(i, i) + pinv(j, j) - 2 * pinv(i, j);
  };
  const NodeId n = g.num_nodes();
  Rng rng(100 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId a = rng.NextBounded(static_cast<uint32_t>(n));
    const NodeId b = rng.NextBounded(static_cast<uint32_t>(n));
    const NodeId c = rng.NextBounded(static_cast<uint32_t>(n));
    EXPECT_NEAR(r(a, a), 0.0, 1e-9);
    EXPECT_GE(r(a, b), -1e-9);                        // non-negative
    EXPECT_NEAR(r(a, b), r(b, a), 1e-9);              // symmetric
    EXPECT_LE(r(a, c), r(a, b) + r(b, c) + 1e-9);     // triangle
  }
}

TEST_P(GraphPropertyTest, ResistanceUpperBoundedByShortestPath) {
  // Effective resistance <= hop distance (unit resistors, Rayleigh).
  const Graph& g = graph();
  const DenseMatrix pinv = LaplacianPseudoinverse(g);
  const BfsResult bfs = Bfs(g, 0);
  for (NodeId u = 1; u < g.num_nodes(); ++u) {
    const double r = pinv(0, 0) + pinv(u, u) - 2 * pinv(0, u);
    EXPECT_LE(r, bfs.depth[u] + 1e-9) << name() << " u=" << u;
  }
}

TEST_P(GraphPropertyTest, RayleighMonotonicityUnderEdgeAddition) {
  // Adding an edge can only decrease effective resistances.
  const Graph& g = graph();
  const NodeId n = g.num_nodes();
  // Find a non-edge to add.
  NodeId a = -1, b = -1;
  for (NodeId u = 0; u < n && a < 0; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (!g.HasEdge(u, v)) {
        a = u;
        b = v;
        break;
      }
    }
  }
  if (a < 0) GTEST_SKIP() << "complete graph";
  auto edges = g.Edges();
  edges.emplace_back(a, b);
  const Graph denser = BuildGraph(n, edges);

  const DenseMatrix p1 = LaplacianPseudoinverse(g);
  const DenseMatrix p2 = LaplacianPseudoinverse(denser);
  Rng rng(31 + GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const NodeId u = rng.NextBounded(static_cast<uint32_t>(n));
    const NodeId v = rng.NextBounded(static_cast<uint32_t>(n));
    const double r1 = p1(u, u) + p1(v, v) - 2 * p1(u, v);
    const double r2 = p2(u, u) + p2(v, v) - 2 * p2(u, v);
    EXPECT_LE(r2, r1 + 1e-9) << name();
  }
}

TEST_P(GraphPropertyTest, TraceInverseIsMonotoneDecreasingInS) {
  // Supermodular-monotone objective: adding nodes shrinks the trace.
  const Graph& g = graph();
  Rng rng(7 + GetParam());
  std::vector<NodeId> s;
  s.push_back(rng.NextBounded(static_cast<uint32_t>(g.num_nodes())));
  double prev = ExactTraceInverseSubmatrix(g, s);
  for (int i = 0; i < 3 && static_cast<NodeId>(s.size()) + 1 <
                              g.num_nodes();
       ++i) {
    NodeId next;
    do {
      next = rng.NextBounded(static_cast<uint32_t>(g.num_nodes()));
    } while (std::find(s.begin(), s.end(), next) != s.end());
    s.push_back(next);
    const double cur = ExactTraceInverseSubmatrix(g, s);
    EXPECT_LT(cur, prev) << name();
    prev = cur;
  }
}

TEST_P(GraphPropertyTest, MarginalGainsAreSupermodular) {
  // For S ⊆ S' and u ∉ S': Delta(u, S) >= Delta(u, S') — the diminishing
  // returns property behind the greedy guarantee.
  const Graph& g = graph();
  Rng rng(13 + GetParam());
  const NodeId n = g.num_nodes();
  auto pick_distinct = [&](std::vector<NodeId>& out, int count) {
    while (static_cast<int>(out.size()) < count) {
      const NodeId v = rng.NextBounded(static_cast<uint32_t>(n));
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
  };
  std::vector<NodeId> base;
  pick_distinct(base, 3);  // base = {a, b, c}; S = {a}, S' = {a, b}
  const NodeId u = base[2];
  const std::vector<NodeId> s_small = {base[0]};
  const std::vector<NodeId> s_big = {base[0], base[1]};
  auto delta = [&](const std::vector<NodeId>& s) {
    std::vector<NodeId> su = s;
    su.push_back(u);
    return ExactTraceInverseSubmatrix(g, s) -
           ExactTraceInverseSubmatrix(g, su);
  };
  EXPECT_GE(delta(s_small), delta(s_big) - 1e-9) << name();
}

TEST_P(GraphPropertyTest, EntrywiseMonotonicityOfSubmatrixInverse) {
  // [29]: growing S can only decrease entries of L_{-S}^{-1} (all
  // entries are non-negative voltages).
  const Graph& g = graph();
  const NodeId n = g.num_nodes();
  Rng rng(23 + GetParam());
  const NodeId a = rng.NextBounded(static_cast<uint32_t>(n));
  NodeId b;
  do {
    b = rng.NextBounded(static_cast<uint32_t>(n));
  } while (b == a);

  const DenseMatrix small_inv = ExactLaplacianSubmatrixInverse(g, {a});
  const DenseMatrix big_inv = ExactLaplacianSubmatrixInverse(g, {a, b});
  const SubmatrixIndex idx_small = MakeSubmatrixIndex(n, {a});
  const SubmatrixIndex idx_big = MakeSubmatrixIndex(n, {a, b});
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (idx_big.pos[u] < 0 || idx_big.pos[v] < 0) continue;
      const double small_e = small_inv(idx_small.pos[u], idx_small.pos[v]);
      const double big_e = big_inv(idx_big.pos[u], idx_big.pos[v]);
      EXPECT_GE(small_e, big_e - 1e-9);
      EXPECT_GE(big_e, -1e-9);  // voltages are non-negative
    }
  }
}

TEST_P(GraphPropertyTest, SchurComplementPreservesTtBlockOfInverse) {
  const Graph& g = graph();
  if (g.num_nodes() < 8) GTEST_SKIP();
  const DenseMatrix l_sub =
      DenseLaplacianSubmatrix(g, MakeSubmatrixIndex(g.num_nodes(), {0}));
  const std::vector<int> t = {1, 3, 5};
  const DenseMatrix schur = ExactSchurComplement(l_sub, t);
  const DenseMatrix schur_inv = LdltFactorization::Compute(schur)->Inverse();
  const DenseMatrix full_inv = LdltFactorization::Compute(l_sub)->Inverse();
  for (std::size_t i = 0; i < t.size(); ++i) {
    for (std::size_t j = 0; j < t.size(); ++j) {
      EXPECT_NEAR(schur_inv(static_cast<int>(i), static_cast<int>(j)),
                  full_inv(t[i], t[j]), 1e-8)
          << name();
    }
  }
}

TEST_P(GraphPropertyTest, GreedyTraceMatchesDownadatesEverywhere) {
  const Graph& g = graph();
  const int k = std::min<NodeId>(4, g.num_nodes() - 1);
  auto result = ExactGreedyMaximize(g, k);
  ASSERT_TRUE(result.ok());
  std::vector<NodeId> prefix;
  for (int i = 0; i < k; ++i) {
    prefix.push_back(result->selected[i]);
    EXPECT_NEAR(result->trace_after[i], ExactTraceInverseSubmatrix(g, prefix),
                1e-7 * result->trace_after[i])
        << name();
  }
}

TEST_P(GraphPropertyTest, GreedyAchievesApproximationFactorVsOptimum) {
  const Graph& g = graph();
  if (g.num_nodes() > 50) GTEST_SKIP() << "optimum too expensive";
  const int k = 3;
  auto greedy = ExactGreedyMaximize(g, k);
  auto opt = OptimumSearch(g, k);
  ASSERT_TRUE(greedy.ok() && opt.ok());
  // Theoretical factor 1 - (k/(k-1)) / e ≈ 0.448 for k=3; practice is
  // far better but we assert the guarantee itself.
  const double c_greedy = ExactGroupCfcc(g, greedy->selected);
  EXPECT_GE(c_greedy, (1.0 - 1.5 / M_E) * opt->cfcc) << name();
  // Empirically greedy is near-optimal; the symmetric cycle is its worst
  // pool instance (~0.92 of optimum), so assert 90% across the board.
  EXPECT_GE(c_greedy, 0.90 * opt->cfcc) << name();
}

INSTANTIATE_TEST_SUITE_P(
    GraphPool, GraphPropertyTest,
    ::testing::Range(0, static_cast<int>(PropertyGraphPool().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      return PropertyGraphPool()[info.param].name;
    });

// Seed sweep: estimator pipelines must stay deterministic and valid
// across seeds.
class SeedSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweepTest, GeneratorsProduceConnectedScaleFreeGraphs) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const Graph g = BarabasiAlbert(300, 2, seed);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.num_nodes(), 300);
  const Graph plc = PowerlawCluster(200, 3, 0.4, seed);
  EXPECT_TRUE(IsConnected(plc));
}

TEST_P(SeedSweepTest, GeometricGraphsStayConnected) {
  const Graph g =
      RandomGeometric(200, 0.06, static_cast<uint64_t>(GetParam()));
  EXPECT_TRUE(IsConnected(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cfcm
