// Incremental re-solve pipeline (DESIGN.md §16).
//
// 1. Identity deltas (empty batch, no-op reweight) take the warm fast
//    path and return the stored cold result verbatim — selection and
//    cfcc bitwise — on every pinned regression graph.
// 2. Under a small reweight delta the warm repair's group is as good as
//    the cold re-solve's across its seed spread (exact CFCC).
// 3. Warm results are a pure function of the seed: 1/2/8 sampling
//    threads produce bitwise identical selections.
// 4. The DecideWarm fallback policy fires for every documented trigger
//    (missing state, k drift, parameter drift, oversized delta,
//    addition support break, disconnection), and a kOn solve that falls
//    back reports cold_fallback without warm_started.
// 5. AdvanceWarmState folds deltas into the running summary: touched
//    edges accumulate, structural flags flip on removals/additions, and
//    the retained forests keep a clean/dirty classification.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cfcm/cfcc.h"
#include "cfcm/incremental.h"
#include "cfcm/options.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/delta.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace cfcm {
namespace {

CfcmOptions Opts(uint64_t seed, int threads = 1) {
  CfcmOptions options;
  options.seed = seed;
  options.num_threads = threads;
  options.selection = SelectionMode::kLazy;
  return options;
}

/// Cold solve that also returns the deposited successor WarmState.
StatusOr<CfcmResult> ColdSolve(const Graph& g, int k, const CfcmOptions& o,
                               std::shared_ptr<const WarmState>* deposit) {
  return ForestSolveWithWarm(g, k, o, WarmMode::kOff, nullptr, deposit);
}

// ------------------------------------------- identity-delta parity (§16)

void ExpectIdentityParity(const Graph& g, int k, uint64_t seed) {
  const CfcmOptions options = Opts(seed);
  std::shared_ptr<const WarmState> deposit;
  const auto cold = ColdSolve(g, k, options, &deposit);
  ASSERT_TRUE(cold.ok());
  ASSERT_NE(deposit, nullptr);

  // Empty delta: the successor state is identical, the warm solve must
  // short-circuit to the stored result.
  const GraphDelta empty;
  const auto advanced = AdvanceWarmState(*deposit, g, empty);
  const auto warm =
      ForestSolveWithWarm(g, k, options, WarmMode::kOn, advanced, nullptr);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_started) << "seed " << seed;
  EXPECT_FALSE(warm->cold_fallback);
  EXPECT_EQ(warm->selected, cold->selected) << "seed " << seed;
  EXPECT_EQ(warm->total_forests, 0);  // no sampling on the fast path
  EXPECT_EQ(warm->total_walk_steps, 0);
}

TEST(WarmIdentityParityTest, Karate) {
  const Graph g = KarateClub();
  for (uint64_t seed : {1, 2, 5}) ExpectIdentityParity(g, 4, seed);
}

TEST(WarmIdentityParityTest, KarateWeighted) {
  const Graph g = KarateClubWeighted();
  for (uint64_t seed : {1, 2, 5}) ExpectIdentityParity(g, 4, seed);
}

TEST(WarmIdentityParityTest, ContiguousUsa) {
  ExpectIdentityParity(ContiguousUsa(), 5, 3);
}

TEST(WarmIdentityParityTest, BarabasiAlbert400) {
  ExpectIdentityParity(BarabasiAlbert(400, 4, 1), 6, 9);
}

TEST(WarmIdentityParityTest, NoOpReweightIsIdentity) {
  // Reweighting an edge to its current conductance changes nothing;
  // AdvanceWarmState must skip it so the fast path still fires.
  const Graph g = KarateClubWeighted();
  const CfcmOptions options = Opts(1);
  std::shared_ptr<const WarmState> deposit;
  const auto cold = ColdSolve(g, 4, options, &deposit);
  ASSERT_TRUE(cold.ok());

  GraphDelta noop;
  noop.ReweightEdge(0, 1, g.EdgeWeight(0, 1));
  const auto g2 = g.Apply(noop);
  ASSERT_TRUE(g2.ok());
  const auto advanced = AdvanceWarmState(*deposit, g, noop);
  EXPECT_TRUE(advanced->touched.empty());
  const auto warm =
      ForestSolveWithWarm(*g2, 4, options, WarmMode::kOn, advanced, nullptr);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_started);
  EXPECT_EQ(warm->selected, cold->selected);
  EXPECT_EQ(warm->total_forests, 0);
}

// --------------------------- small-delta quality vs cold seed spread

TEST(WarmQualityTest, SmallReweightWithinColdSeedSpread) {
  const Graph g = KarateClub();
  const int k = 4;
  GraphDelta delta;
  delta.ReweightEdge(0, 1, 1.2);
  const auto g2 = g.Apply(delta);
  ASSERT_TRUE(g2.ok());

  auto tight = [](uint64_t seed) {
    CfcmOptions options = Opts(seed);
    options.eps = 0.1;  // enough samples that noise beats no repair
    return options;
  };

  // Cold re-solves across seeds set the quality floor: the warm repair
  // may land on a different (sampling-noise) group, but its exact CFCC
  // must not fall below the worst cold seed's.
  double cold_floor = 0.0;
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    const auto cold = ColdSolve(*g2, k, tight(seed), nullptr);
    ASSERT_TRUE(cold.ok());
    const double cfcc = ExactGroupCfcc(*g2, cold->selected);
    cold_floor = cold_floor == 0.0 ? cfcc : std::min(cold_floor, cfcc);
  }

  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    const CfcmOptions options = tight(seed);
    std::shared_ptr<const WarmState> deposit;
    ASSERT_TRUE(ColdSolve(g, k, options, &deposit).ok());
    const auto advanced = AdvanceWarmState(*deposit, g, delta);
    const auto warm =
        ForestSolveWithWarm(*g2, k, options, WarmMode::kOn, advanced, nullptr);
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(warm->warm_started) << "seed " << seed;
    const double warm_cfcc = ExactGroupCfcc(*g2, warm->selected);
    EXPECT_GE(warm_cfcc, cold_floor * (1.0 - 1e-9)) << "seed " << seed;
  }
}

// ------------------------------------------ thread-count invariance

TEST(WarmDeterminismTest, ThreadCountInvariant) {
  const Graph g = BarabasiAlbert(400, 4, 1);
  GraphDelta delta;
  delta.ReweightEdge(0, 1, 1.5);
  const auto g2 = g.Apply(delta);
  ASSERT_TRUE(g2.ok());

  std::vector<NodeId> reference;
  for (int threads : {1, 2, 8}) {
    const CfcmOptions options = Opts(9, threads);
    std::shared_ptr<const WarmState> deposit;
    ASSERT_TRUE(ColdSolve(g, 6, options, &deposit).ok());
    const auto advanced = AdvanceWarmState(*deposit, g, delta);
    const auto warm =
        ForestSolveWithWarm(*g2, 6, options, WarmMode::kOn, advanced, nullptr);
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(warm->warm_started) << "threads " << threads;
    if (reference.empty()) {
      reference = warm->selected;
    } else {
      EXPECT_EQ(warm->selected, reference) << "threads " << threads;
    }
  }
}

// -------------------------------------------- DecideWarm fallback policy

TEST(DecideWarmTest, NullStateAndParameterDrift) {
  const Graph g = KarateClub();
  const CfcmOptions options = Opts(1);
  EXPECT_STREQ(DecideWarm(g, nullptr, 4, options).reason, "no_warm_state");

  std::shared_ptr<const WarmState> deposit;
  ASSERT_TRUE(ColdSolve(g, 4, options, &deposit).ok());
  EXPECT_TRUE(DecideWarm(g, deposit.get(), 4, options).use_warm);
  EXPECT_STREQ(DecideWarm(g, deposit.get(), 4, options).reason, "ok");

  EXPECT_STREQ(DecideWarm(g, deposit.get(), 5, options).reason, "k_mismatch");
  EXPECT_STREQ(DecideWarm(g, deposit.get(), 1, options).reason,
               "k_too_small");
  EXPECT_STREQ(DecideWarm(g, deposit.get(), 4, Opts(2)).reason,
               "params_changed");
  CfcmOptions other_eps = options;
  other_eps.eps = options.eps * 0.5;
  EXPECT_STREQ(DecideWarm(g, deposit.get(), 4, other_eps).reason,
               "params_changed");
}

TEST(DecideWarmTest, OversizedDeltaFallsBackCold) {
  const Graph g = KarateClub();
  const CfcmOptions options = Opts(1);
  std::shared_ptr<const WarmState> deposit;
  ASSERT_TRUE(ColdSolve(g, 4, options, &deposit).ok());

  // Touch well past warm_max_delta_fraction (default 0.25) of karate's
  // 78 edges.
  GraphDelta big;
  const auto edges = g.Edges();
  const std::size_t count = std::min<std::size_t>(30, edges.size());
  for (std::size_t i = 0; i < count; ++i) {
    big.ReweightEdge(edges[i].first, edges[i].second, 2.0);
  }
  const auto g2 = g.Apply(big);
  ASSERT_TRUE(g2.ok());
  const auto advanced = AdvanceWarmState(*deposit, g, big);
  EXPECT_STREQ(DecideWarm(*g2, advanced.get(), 4, options).reason,
               "delta_too_large");

  // A kOn solve still succeeds — cold, with the fallback reported.
  const auto solved =
      ForestSolveWithWarm(*g2, 4, options, WarmMode::kOn, advanced, nullptr);
  ASSERT_TRUE(solved.ok());
  EXPECT_FALSE(solved->warm_started);
  EXPECT_TRUE(solved->cold_fallback);
}

TEST(DecideWarmTest, HeavyAdditionBreaksProposalSupport) {
  const Graph g = KarateClub();
  const CfcmOptions options = Opts(1);
  std::shared_ptr<const WarmState> deposit;
  ASSERT_TRUE(ColdSolve(g, 4, options, &deposit).ok());

  // A dominant new edge: a post-delta forest almost surely crosses it,
  // so the importance-correction share exceeds the 0.5 ceiling.
  GraphDelta heavy;
  ASSERT_FALSE(g.HasEdge(15, 18));
  heavy.AddEdge(15, 18, 1000.0);
  const auto g2 = g.Apply(heavy);
  ASSERT_TRUE(g2.ok());
  const auto advanced = AdvanceWarmState(*deposit, g, heavy);
  EXPECT_GE(advanced->addition_share, 0.5);
  EXPECT_STREQ(DecideWarm(*g2, advanced.get(), 4, options).reason,
               "addition_share");
}

TEST(DecideWarmTest, DisconnectingDeltaFallsBackCold) {
  // Path 0-1-2-3-4-5; removing the middle edge splits it.
  const Graph g = BuildWeightedGraph(
      6, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}, {4, 5, 1.0}});
  const CfcmOptions options = Opts(1);
  std::shared_ptr<const WarmState> deposit;
  ASSERT_TRUE(ColdSolve(g, 2, options, &deposit).ok());

  GraphDelta cut;
  cut.RemoveEdge(2, 3);
  const auto g2 = g.Apply(cut);
  ASSERT_TRUE(g2.ok());
  const auto advanced = AdvanceWarmState(*deposit, g, cut);
  EXPECT_STREQ(DecideWarm(*g2, advanced.get(), 2, options).reason,
               "disconnected");
}

// ---------------------------------------- AdvanceWarmState bookkeeping

TEST(AdvanceWarmStateTest, AccumulatesTouchedEdgesAndFlags) {
  const Graph g = KarateClub();
  std::shared_ptr<const WarmState> deposit;
  ASSERT_TRUE(ColdSolve(g, 4, Opts(1), &deposit).ok());
  EXPECT_TRUE(deposit->touched.empty());
  EXPECT_FALSE(deposit->structural);

  GraphDelta reweight;
  reweight.ReweightEdge(0, 1, 3.0);
  const auto s1 = AdvanceWarmState(*deposit, g, reweight);
  ASSERT_EQ(s1->touched.size(), 1u);
  EXPECT_EQ(s1->touched[0].u, 0);
  EXPECT_EQ(s1->touched[0].v, 1);
  EXPECT_DOUBLE_EQ(s1->touched[0].abs_dw, 2.0);
  EXPECT_FALSE(s1->structural);
  EXPECT_EQ(s1->epoch_salt, deposit->epoch_salt + 1);

  const auto g1 = g.Apply(reweight);
  ASSERT_TRUE(g1.ok());
  GraphDelta remove;
  remove.RemoveEdge(2, 3);
  const auto s2 = AdvanceWarmState(*s1, *g1, remove);
  EXPECT_EQ(s2->touched.size(), 2u);
  EXPECT_TRUE(s2->structural);
}

TEST(AdvanceWarmStateTest, RetainedForestsKeepCleanDirtySplit) {
  // The deposit carries the final greedy round's arena; a 1-edge
  // reweight dirties exactly the forests whose up-edge set crosses it —
  // on karate that is a strict minority, so both classes must appear
  // non-trivially or not at all (never all-dirty).
  const Graph g = KarateClub();
  std::shared_ptr<const WarmState> deposit;
  ASSERT_TRUE(ColdSolve(g, 4, Opts(1), &deposit).ok());
  ASSERT_NE(deposit->lease, nullptr);
  ASSERT_FALSE(deposit->clean.empty());
  for (char c : deposit->clean) EXPECT_NE(c, 0);  // all clean at capture

  GraphDelta delta;
  delta.ReweightEdge(0, 1, 2.0);
  const auto advanced = AdvanceWarmState(*deposit, g, delta);
  ASSERT_NE(advanced->lease, nullptr);
  ASSERT_EQ(advanced->clean.size(), deposit->clean.size());
  const std::size_t clean_count = static_cast<std::size_t>(
      std::count_if(advanced->clean.begin(), advanced->clean.end(),
                    [](char c) { return c != 0; }));
  EXPECT_GT(clean_count, 0u);
  EXPECT_LT(clean_count, advanced->clean.size());  // (0,1) is a hub edge

  // The predecessor's lease was claimed by the advance; a second
  // claimant must lose.
  EXPECT_FALSE(deposit->lease->TryClaim());
}

TEST(AdvanceWarmStateTest, NodeAdditionCarriesNoArenaButStaysWarm) {
  const Graph g = KarateClub();
  const CfcmOptions options = Opts(1);
  std::shared_ptr<const WarmState> deposit;
  ASSERT_TRUE(ColdSolve(g, 4, options, &deposit).ok());

  GraphDelta grow;
  grow.AddNodes(1);
  grow.AddEdge(34, 0, 1.0);
  const auto g2 = g.Apply(grow);
  ASSERT_TRUE(g2.ok());
  const auto advanced = AdvanceWarmState(*deposit, g, grow);
  EXPECT_EQ(advanced->lease, nullptr);  // old-id-space arena dropped
  EXPECT_TRUE(advanced->structural);
  const WarmDecision decision =
      DecideWarm(*g2, advanced.get(), 4, options);
  EXPECT_TRUE(decision.use_warm) << decision.reason;

  const auto warm =
      ForestSolveWithWarm(*g2, 4, options, WarmMode::kOn, advanced, nullptr);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_started);
}

// ------------------------------------------------ warm-mode plumbing

TEST(WarmModeTest, NamesRoundTrip) {
  EXPECT_STREQ(WarmModeName(WarmMode::kOff), "off");
  EXPECT_STREQ(WarmModeName(WarmMode::kAuto), "auto");
  EXPECT_STREQ(WarmModeName(WarmMode::kOn), "on");
  EXPECT_EQ(ParseWarmMode("auto"), WarmMode::kAuto);
  EXPECT_EQ(ParseWarmMode("on"), WarmMode::kOn);
  EXPECT_EQ(ParseWarmMode("off"), WarmMode::kOff);
  EXPECT_EQ(ParseWarmMode("bogus"), std::nullopt);
}

TEST(WarmModeTest, AutoWithoutStateIsColdNotFallback) {
  const Graph g = KarateClub();
  const auto solved =
      ForestSolveWithWarm(g, 4, Opts(1), WarmMode::kAuto, nullptr, nullptr);
  ASSERT_TRUE(solved.ok());
  EXPECT_FALSE(solved->warm_started);
  EXPECT_FALSE(solved->cold_fallback);  // nothing existed to fall back from
}

TEST(WarmModeTest, WarmSolveDepositsSuccessorState) {
  // The warm path itself must leave a state behind so chains of deltas
  // keep warm-starting epoch after epoch.
  const Graph g = KarateClub();
  const CfcmOptions options = Opts(1);
  std::shared_ptr<const WarmState> deposit;
  ASSERT_TRUE(ColdSolve(g, 4, options, &deposit).ok());

  GraphDelta d1;
  d1.ReweightEdge(0, 1, 1.1);
  const auto g1 = g.Apply(d1);
  ASSERT_TRUE(g1.ok());
  auto advanced = AdvanceWarmState(*deposit, g, d1);
  std::shared_ptr<const WarmState> redeposit;
  const auto warm1 =
      ForestSolveWithWarm(*g1, 4, options, WarmMode::kOn, advanced, &redeposit);
  ASSERT_TRUE(warm1.ok());
  EXPECT_TRUE(warm1->warm_started);
  ASSERT_NE(redeposit, nullptr);

  GraphDelta d2;
  d2.ReweightEdge(0, 1, 1.2);
  const auto g2 = g1->Apply(d2);
  ASSERT_TRUE(g2.ok());
  advanced = AdvanceWarmState(*redeposit, *g1, d2);
  const auto warm2 =
      ForestSolveWithWarm(*g2, 4, options, WarmMode::kOn, advanced, nullptr);
  ASSERT_TRUE(warm2.ok());
  EXPECT_TRUE(warm2->warm_started);
}

}  // namespace
}  // namespace cfcm
