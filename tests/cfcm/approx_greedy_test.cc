#include "cfcm/approx_greedy.h"

#include <gtest/gtest.h>

#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

CfcmOptions TestOptions() {
  CfcmOptions opts;
  opts.eps = 0.2;
  opts.seed = 5;
  opts.jl_rows = 48;
  return opts;
}

TEST(ApproxGreedyTest, NearExactQualityOnKarate) {
  const Graph g = KarateClub();
  auto approx = ApproxGreedyMaximize(g, 5, TestOptions());
  auto exact = ExactGreedyMaximize(g, 5);
  ASSERT_TRUE(approx.ok() && exact.ok());
  const double c_approx = ExactGroupCfcc(g, approx->selected);
  const double c_exact = ExactGroupCfcc(g, exact->selected);
  EXPECT_GE(c_approx, 0.9 * c_exact);
}

TEST(ApproxGreedyTest, SolverCallCountMatchesStructure) {
  // Pick 1: w solves; picks 2..k: 2w solves each.
  const Graph g = ContiguousUsa();
  CfcmOptions opts = TestOptions();
  opts.jl_rows = 16;
  auto result = ApproxGreedyMaximize(g, 3, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->solver_calls, 16 + 2 * 16 * 2);
  EXPECT_GT(result->cg_iterations, 0);
}

TEST(ApproxGreedyTest, SelectsDistinctNodes) {
  const Graph g = DolphinsSynthetic();
  auto result = ApproxGreedyMaximize(g, 8, TestOptions());
  ASSERT_TRUE(result.ok());
  std::vector<NodeId> sorted = result->selected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(ApproxGreedyTest, DeterministicInSeed) {
  const Graph g = KarateClub();
  auto a = ApproxGreedyMaximize(g, 4, TestOptions());
  auto b = ApproxGreedyMaximize(g, 4, TestOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->selected, b->selected);
}

TEST(ApproxGreedyTest, RejectsInvalidInput) {
  EXPECT_FALSE(ApproxGreedyMaximize(KarateClub(), 0, TestOptions()).ok());
  EXPECT_FALSE(
      ApproxGreedyMaximize(BuildGraph(4, {{0, 1}, {2, 3}}), 1, TestOptions())
          .ok());
}

TEST(ApproxGreedyTest, FirstPickIsGoodSingleNode) {
  // The JL/solver first pick should land on a top single-node group.
  const Graph g = KarateClub();
  auto result = ApproxGreedyMaximize(g, 1, TestOptions());
  ASSERT_TRUE(result.ok());
  const double c_picked = ExactGroupCfcc(g, result->selected);
  double c_best = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    c_best = std::max(c_best, ExactGroupCfcc(g, {u}));
  }
  EXPECT_GE(c_picked, 0.97 * c_best);
}

}  // namespace
}  // namespace cfcm
