#include "cfcm/optimum.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "cfcm/cfcc.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace cfcm {
namespace {

// Reference: brute force by fresh dense factorization per subset.
std::pair<std::vector<NodeId>, double> NaiveOptimum(const Graph& g, int k) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> subset(static_cast<std::size_t>(k));
  std::vector<NodeId> best;
  double best_trace = 1e300;
  // Enumerate combinations via odometer.
  for (int i = 0; i < k; ++i) subset[i] = i;
  for (;;) {
    const double trace = ExactTraceInverseSubmatrix(
        g, std::vector<NodeId>(subset.begin(), subset.end()));
    if (trace < best_trace) {
      best_trace = trace;
      best = subset;
    }
    int pos = k - 1;
    while (pos >= 0 && subset[pos] == n - k + pos) --pos;
    if (pos < 0) break;
    ++subset[pos];
    for (int i = pos + 1; i < k; ++i) subset[i] = subset[i - 1] + 1;
  }
  return {best, best_trace};
}

TEST(OptimumTest, MatchesNaiveOnKarateK2) {
  const Graph g = KarateClub();
  auto fast = OptimumSearch(g, 2);
  ASSERT_TRUE(fast.ok());
  const auto [naive_best, naive_trace] = NaiveOptimum(g, 2);
  EXPECT_NEAR(fast->trace, naive_trace, 1e-8);
  EXPECT_EQ(fast->best, naive_best);
  EXPECT_EQ(fast->subsets_evaluated, 34 * 33 / 2);
}

TEST(OptimumTest, MatchesNaiveOnZebraK3) {
  const Graph g = ZebraSynthetic();
  auto fast = OptimumSearch(g, 3);
  ASSERT_TRUE(fast.ok());
  const auto [naive_best, naive_trace] = NaiveOptimum(g, 3);
  EXPECT_NEAR(fast->trace, naive_trace, 1e-8);
  EXPECT_EQ(fast->best, naive_best);
}

TEST(OptimumTest, K1MatchesBestSingleNode) {
  const Graph g = ContiguousUsa();
  auto fast = OptimumSearch(g, 1);
  ASSERT_TRUE(fast.ok());
  double best = 1e300;
  NodeId best_u = -1;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const double trace = ExactTraceInverseSubmatrix(g, {u});
    if (trace < best) {
      best = trace;
      best_u = u;
    }
  }
  EXPECT_EQ(fast->best, std::vector<NodeId>{best_u});
  EXPECT_NEAR(fast->trace, best, 1e-9);
}

TEST(OptimumTest, CfccIsNOverTrace) {
  const Graph g = KarateClub();
  auto result = OptimumSearch(g, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->cfcc, 34.0 / result->trace, 1e-12);
  EXPECT_NEAR(result->cfcc, ExactGroupCfcc(g, result->best), 1e-9);
}

TEST(OptimumTest, EvaluatesAllSubsets) {
  const Graph g = ZebraSynthetic();  // n = 23
  auto result = OptimumSearch(g, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->subsets_evaluated, 23LL * 22 * 21 / 6);
}

TEST(OptimumTest, RejectsLargeGraphs) {
  const Graph g = BarabasiAlbert(200, 2, 3);
  EXPECT_FALSE(OptimumSearch(g, 2).ok());
}

TEST(OptimumTest, BestIsSortedAndDistinct) {
  const Graph g = KarateClub();
  auto result = OptimumSearch(g, 4);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->best.size(), 4u);
  EXPECT_TRUE(std::is_sorted(result->best.begin(), result->best.end()));
  EXPECT_EQ(std::adjacent_find(result->best.begin(), result->best.end()),
            result->best.end());
}

}  // namespace
}  // namespace cfcm
