// Boundary conditions for the solvers: extreme k, tiny graphs, hubs
// swallowed into S, adversarial topologies.
#include <algorithm>

#include <gtest/gtest.h>

#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/optimum.h"
#include "cfcm/schur_cfcm.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

CfcmOptions FastOptions() {
  CfcmOptions opts;
  opts.seed = 41;
  opts.num_threads = 2;
  opts.max_forests = 256;
  return opts;
}

TEST(EdgeCasesTest, KEqualsNMinusOne) {
  // Selecting all but one node: the loop must survive |V \ S| = 1.
  const Graph g = CycleGraph(6);
  for (auto solver : {&ForestCfcmMaximize, &SchurCfcmMaximize}) {
    auto result = solver(g, 5, FastOptions());
    ASSERT_TRUE(result.ok());
    std::vector<NodeId> sorted = result->selected;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
    EXPECT_EQ(sorted.size(), 5u);
  }
  auto exact = ExactGreedyMaximize(g, 5);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->selected.size(), 5u);
}

TEST(EdgeCasesTest, TwoNodeGraph) {
  const Graph g = PathGraph(2);
  auto result = ForestCfcmMaximize(g, 1, FastOptions());
  ASSERT_TRUE(result.ok());
  // Both nodes are symmetric; any single node is optimal.
  EXPECT_NEAR(ExactGroupCfcc(g, result->selected), 2.0, 1e-12);
}

TEST(EdgeCasesTest, SchurWithHubSwallowedIntoS) {
  // t_size=1: once the single auxiliary hub joins S, SchurCFCM must fall
  // back to plain ForestDelta and still finish.
  const Graph g = StarGraph(12);
  CfcmOptions opts = FastOptions();
  opts.t_size = 1;
  auto result = SchurCfcmMaximize(g, 4, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected.size(), 4u);
  // The hub is selected quickly on a star.
  EXPECT_NE(std::find(result->selected.begin(), result->selected.end(), 0),
            result->selected.end());
}

TEST(EdgeCasesTest, CompleteGraphAnyGroupIsOptimal) {
  // Full symmetry: every k-group has identical CFCC; the solvers must
  // not crash on zero-variance gains.
  const Graph g = CompleteGraph(8);
  auto forest = ForestCfcmMaximize(g, 3, FastOptions());
  auto optimum = OptimumSearch(g, 3);
  ASSERT_TRUE(forest.ok() && optimum.ok());
  EXPECT_NEAR(ExactGroupCfcc(g, forest->selected), optimum->cfcc, 1e-9);
}

TEST(EdgeCasesTest, LongPathHighDiameter) {
  // Diameter ~ n is the flow estimators' worst case: the paper's sample
  // bound is exponential in tau, and at practical budgets the estimate
  // is noisy. Assert the documented floor (a solid fraction of optimum
  // with a fixed seed) rather than near-optimality — this is a regime
  // limitation shared with the paper, not a bug.
  const Graph g = PathGraph(60);
  CfcmOptions opts = FastOptions();
  opts.max_forests = 2048;
  opts.forest_factor = 8.0;
  auto result = ForestCfcmMaximize(g, 2, opts);
  ASSERT_TRUE(result.ok());
  const double c = ExactGroupCfcc(g, result->selected);
  auto opt = OptimumSearch(g, 2);
  ASSERT_TRUE(opt.ok());
  EXPECT_GE(c, 0.6 * opt->cfcc);
}

TEST(EdgeCasesTest, SchurTSizeLargerThanGraphIsClamped) {
  const Graph g = KarateClub();
  CfcmOptions opts = FastOptions();
  opts.t_size = 1000;  // > n
  auto result = SchurCfcmMaximize(g, 3, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->auxiliary_roots, g.num_nodes() - 2);
}

TEST(EdgeCasesTest, OptimumKEqualsNMinusOne) {
  const Graph g = CycleGraph(5);
  auto result = OptimumSearch(g, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best.size(), 4u);
  // Leaving out any single node of a cycle is symmetric: trace = R = 1
  // resistance of... the remaining node u has R(u, S) = harmonic of the
  // two arc paths = (1*4)/(1+4)? No: remaining node connects to S via
  // two unit edges -> parallel resistance 1/2... both neighbors in S.
  EXPECT_NEAR(result->trace, 0.5, 1e-10);
}

}  // namespace
}  // namespace cfcm
