// End-to-end runs of all five solvers plus heuristics on the embedded
// graphs, asserting the paper's quality ordering (Figs. 1-3):
// Optimum >= Exact ≈ Schur ≈ Forest >= Approx >= heuristics (within
// sampling tolerance).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cfcm/approx_greedy.h"
#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/heuristics.h"
#include "cfcm/optimum.h"
#include "cfcm/schur_cfcm.h"
#include "graph/builder.h"
#include "graph/components.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace cfcm {
namespace {

CfcmOptions SamplingOptions() {
  CfcmOptions opts;
  opts.eps = 0.2;
  opts.seed = 23;
  opts.num_threads = 2;
  opts.max_forests = 4096;
  opts.forest_factor = 8.0;
  return opts;
}

TEST(IntegrationTest, FullStackOnKarateK5) {
  const Graph g = KarateClub();
  constexpr int k = 5;
  auto opt = OptimumSearch(g, k);
  auto exact = ExactGreedyMaximize(g, k);
  auto forest = ForestCfcmMaximize(g, k, SamplingOptions());
  auto schur = SchurCfcmMaximize(g, k, SamplingOptions());
  auto approx = ApproxGreedyMaximize(g, k, SamplingOptions());
  ASSERT_TRUE(opt.ok() && exact.ok() && forest.ok() && schur.ok() &&
              approx.ok());

  const double c_opt = opt->cfcc;
  const double c_exact = ExactGroupCfcc(g, exact->selected);
  const double c_forest = ExactGroupCfcc(g, forest->selected);
  const double c_schur = ExactGroupCfcc(g, schur->selected);
  const double c_approx = ExactGroupCfcc(g, approx->selected);
  const double c_degree = ExactGroupCfcc(g, DegreeSelect(g, k));

  // Paper Fig. 1: greedy methods are all near-optimal.
  EXPECT_GE(c_exact, 0.99 * c_opt);
  EXPECT_GE(c_forest, 0.93 * c_opt);
  EXPECT_GE(c_schur, 0.93 * c_opt);
  EXPECT_GE(c_approx, 0.90 * c_opt);
  // ... and clearly better than the degree heuristic (Fig. 2).
  EXPECT_GT(c_exact, c_degree);
  EXPECT_GT(c_schur, c_degree);
}

TEST(IntegrationTest, FullStackOnContUsaK4) {
  const Graph g = ContiguousUsa();
  constexpr int k = 4;
  auto opt = OptimumSearch(g, k);
  auto exact = ExactGreedyMaximize(g, k);
  auto forest = ForestCfcmMaximize(g, k, SamplingOptions());
  auto schur = SchurCfcmMaximize(g, k, SamplingOptions());
  ASSERT_TRUE(opt.ok() && exact.ok() && forest.ok() && schur.ok());
  EXPECT_GE(ExactGroupCfcc(g, exact->selected), 0.99 * opt->cfcc);
  EXPECT_GE(ExactGroupCfcc(g, forest->selected), 0.92 * opt->cfcc);
  EXPECT_GE(ExactGroupCfcc(g, schur->selected), 0.92 * opt->cfcc);
}

TEST(IntegrationTest, MediumScaleFreeGraphQualityOrdering) {
  // On a 400-node BA graph (Exact feasible), the sampled greedy methods
  // must stay within a few percent of Exact and beat Degree/Top-CFCC.
  const Graph g = BarabasiAlbert(400, 3, 77);
  constexpr int k = 8;
  auto exact = ExactGreedyMaximize(g, k);
  auto forest = ForestCfcmMaximize(g, k, SamplingOptions());
  auto schur = SchurCfcmMaximize(g, k, SamplingOptions());
  ASSERT_TRUE(exact.ok() && forest.ok() && schur.ok());
  const double c_exact = ExactGroupCfcc(g, exact->selected);
  const double c_forest = ExactGroupCfcc(g, forest->selected);
  const double c_schur = ExactGroupCfcc(g, schur->selected);
  const double c_degree = ExactGroupCfcc(g, DegreeSelect(g, k));
  const double c_top = ExactGroupCfcc(g, TopCfccSelectExact(g, k));
  EXPECT_GE(c_forest, 0.93 * c_exact);
  EXPECT_GE(c_schur, 0.93 * c_exact);
  EXPECT_GE(c_exact, c_degree - 1e-12);
  EXPECT_GE(c_exact, c_top - 1e-12);
}

TEST(IntegrationTest, HutchinsonEvaluationAgreesWithDense) {
  // The large-graph CFCC evaluation path must agree with dense algebra
  // where both are feasible.
  const Graph g = DolphinsSynthetic();
  auto schur = SchurCfcmMaximize(g, 6, SamplingOptions());
  ASSERT_TRUE(schur.ok());
  const double dense = ExactGroupCfcc(g, schur->selected);
  const ApproxCfcc sampled = ApproximateGroupCfcc(g, schur->selected, 512, 3);
  EXPECT_NEAR(sampled.cfcc, dense, 0.05 * dense);
}

TEST(IntegrationTest, LccPipelineOnDisconnectedInput) {
  // Realistic ingestion: raw edge list with small disconnected parts.
  GraphBuilder builder;
  const Graph ba = BarabasiAlbert(150, 2, 31);
  for (const auto& [u, v] : ba.Edges()) builder.AddEdge(u, v);
  builder.AddEdge(300, 301);  // stray component
  builder.AddEdge(302, 303);
  const Graph raw = std::move(std::move(builder).Build()).value();
  ASSERT_FALSE(IsConnected(raw));

  const LccResult lcc = LargestConnectedComponent(raw);
  ASSERT_TRUE(IsConnected(lcc.graph));
  EXPECT_EQ(lcc.graph.num_nodes(), 150);

  auto result = SchurCfcmMaximize(lcc.graph, 5, SamplingOptions());
  ASSERT_TRUE(result.ok());
  // Map back to original ids and confirm they exist there.
  for (NodeId u : result->selected) {
    ASSERT_LT(static_cast<std::size_t>(u), lcc.to_original.size());
    EXPECT_LT(lcc.to_original[u], 300);
  }
}

TEST(IntegrationTest, SaveLoadSolveRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cfcm_integration.txt";
  ASSERT_TRUE(SaveEdgeList(KarateClub(), path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  auto a = ForestCfcmMaximize(*loaded, 3, SamplingOptions());
  auto b = ForestCfcmMaximize(KarateClub(), 3, SamplingOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->selected, b->selected);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cfcm
