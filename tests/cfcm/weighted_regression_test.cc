// Two guarantees of the weighted-core refactor:
//
// 1. On unit-weighted graphs every solver is byte-identical to the
//    pre-weights tree: the pinned selections and forest counts below
//    were captured on the original unweighted implementation (karate
//    seed 1, usa seed 3) and must never drift for these seeds.
// 2. On weighted graphs the sampling solvers track the weighted EXACT
//    greedy baseline within the (1 ± eps) regime, and determinism per
//    seed holds regardless of thread count.
#include <vector>

#include <gtest/gtest.h>

#include "cfcm/approx_greedy.h"
#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/heuristics.h"
#include "cfcm/optimum.h"
#include "cfcm/schur_cfcm.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

CfcmOptions Opts(uint64_t seed) {
  CfcmOptions options;
  options.seed = seed;
  options.num_threads = 1;
  return options;
}

TEST(UnitWeightRegressionTest, ForestCfcmKaratePinnedSelection) {
  const Graph g = KarateClub();
  const auto result = ForestCfcmMaximize(g, 4, Opts(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, (std::vector<NodeId>{0, 25, 16, 18}));
  EXPECT_EQ(result->total_forests, 512);
}

TEST(UnitWeightRegressionTest, SchurCfcmKaratePinnedSelection) {
  const Graph g = KarateClub();
  const auto result = SchurCfcmMaximize(g, 4, Opts(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, (std::vector<NodeId>{0, 33, 6, 11}));
  EXPECT_EQ(result->total_forests, 512);
}

TEST(UnitWeightRegressionTest, ExactGreedyKaratePinnedSelection) {
  const auto result = ExactGreedyMaximize(KarateClub(), 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, (std::vector<NodeId>{33, 0, 16, 11}));
}

TEST(UnitWeightRegressionTest, ApproxGreedyKaratePinnedSelection) {
  const auto result = ApproxGreedyMaximize(KarateClub(), 4, Opts(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, (std::vector<NodeId>{33, 6, 0, 11}));
}

TEST(UnitWeightRegressionTest, HeuristicsKaratePinnedSelections) {
  const Graph g = KarateClub();
  EXPECT_EQ(DegreeSelect(g, 4), (std::vector<NodeId>{33, 0, 32, 2}));
  EXPECT_EQ(TopCfccSelectExact(g, 4), (std::vector<NodeId>{33, 0, 2, 32}));
}

TEST(UnitWeightRegressionTest, OptimumKaratePinnedSelection) {
  const auto result = OptimumSearch(KarateClub(), 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best, (std::vector<NodeId>{0, 11, 16, 33}));
}

TEST(UnitWeightRegressionTest, ForestAndSchurUsaPinnedSelections) {
  const Graph g = ContiguousUsa();
  const auto forest = ForestCfcmMaximize(g, 5, Opts(3));
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->selected, (std::vector<NodeId>{15, 17, 31, 25, 24}));
  EXPECT_EQ(forest->total_forests, 705);
  const auto schur = SchurCfcmMaximize(g, 5, Opts(3));
  ASSERT_TRUE(schur.ok());
  EXPECT_EQ(schur->selected, (std::vector<NodeId>{15, 17, 4, 35, 9}));
  EXPECT_EQ(schur->total_forests, 705);
}

TEST(UnitWeightRegressionTest, AllOnesWeightsAreBehaviorallyInvisible) {
  // A graph explicitly built with 1.0 conductances degrades to the
  // unit-weighted representation and reproduces the pinned run.
  const Graph karate = KarateClub();
  GraphBuilder builder(karate.num_nodes());
  for (const auto& [u, v] : karate.Edges()) builder.AddEdge(u, v, 1.0);
  const Graph g = std::move(std::move(builder).Build()).value();
  ASSERT_TRUE(g.is_unit_weighted());
  const auto result = ForestCfcmMaximize(g, 4, Opts(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, (std::vector<NodeId>{0, 25, 16, 18}));
  EXPECT_EQ(result->total_forests, 512);
}

// ---------------------------------------------------------------- weighted

TEST(WeightedCfcmTest, ForestTracksWeightedExactBaseline) {
  const Graph g = KarateClubWeighted();
  const int k = 4;
  const auto exact = ExactGreedyMaximize(g, k);
  ASSERT_TRUE(exact.ok());
  const double exact_cfcc = ExactGroupCfcc(g, exact->selected);

  const auto forest = ForestCfcmMaximize(g, k, Opts(1));
  ASSERT_TRUE(forest.ok());
  const double forest_cfcc = ExactGroupCfcc(g, forest->selected);
  // eps = 0.2 default: the sampled greedy value must stay within the
  // (1 - eps) band of the exact greedy value.
  EXPECT_GE(forest_cfcc, (1.0 - 0.2) * exact_cfcc);
  EXPECT_LE(forest_cfcc, (1.0 + 0.2) * exact_cfcc);
}

TEST(WeightedCfcmTest, SchurTracksWeightedExactBaseline) {
  const Graph g = KarateClubWeighted();
  const int k = 4;
  const auto exact = ExactGreedyMaximize(g, k);
  ASSERT_TRUE(exact.ok());
  const double exact_cfcc = ExactGroupCfcc(g, exact->selected);

  const auto schur = SchurCfcmMaximize(g, k, Opts(1));
  ASSERT_TRUE(schur.ok());
  const double schur_cfcc = ExactGroupCfcc(g, schur->selected);
  EXPECT_GE(schur_cfcc, (1.0 - 0.2) * exact_cfcc);
}

TEST(WeightedCfcmTest, ForestTracksExactOnWeightedGrid) {
  const Graph g = AssignUniformWeights(GridGraph(6, 6), 0.25, 4.0, 23);
  const int k = 3;
  const auto exact = ExactGreedyMaximize(g, k);
  ASSERT_TRUE(exact.ok());
  const double exact_cfcc = ExactGroupCfcc(g, exact->selected);
  const auto forest = ForestCfcmMaximize(g, k, Opts(5));
  ASSERT_TRUE(forest.ok());
  EXPECT_GE(ExactGroupCfcc(g, forest->selected), (1.0 - 0.2) * exact_cfcc);
}

TEST(WeightedCfcmTest, WeightedExactGreedyMatchesOptimumOnKarate) {
  const Graph g = KarateClubWeighted();
  const auto exact = ExactGreedyMaximize(g, 3);
  const auto optimum = OptimumSearch(g, 3);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(optimum.ok());
  // Greedy is not guaranteed optimal, but must be within the (1 - 1/e)
  // bound; on this instance it should be very close.
  EXPECT_GE(ExactGroupCfcc(g, exact->selected),
            (1.0 - 1.0 / 2.718281828) * optimum->cfcc);
}

TEST(WeightedCfcmTest, WeightedSolversDeterministicPerSeedAcrossThreads) {
  const Graph g = KarateClubWeighted();
  CfcmOptions one = Opts(7);
  CfcmOptions four = Opts(7);
  four.num_threads = 4;
  const auto a = ForestCfcmMaximize(g, 4, one);
  const auto b = ForestCfcmMaximize(g, 4, four);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->selected, b->selected);
  EXPECT_EQ(a->total_forests, b->total_forests);
  const auto c = SchurCfcmMaximize(g, 4, one);
  const auto d = SchurCfcmMaximize(g, 4, four);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(c->selected, d->selected);
  EXPECT_EQ(c->total_forests, d->total_forests);
}

TEST(WeightedCfcmTest, DegreeSelectRanksByWeightedDegree) {
  // Node 2's conductances dominate even though node 0 has more edges.
  const Graph g = BuildWeightedGraph(
      5, {{0, 1, 1.0}, {0, 3, 1.0}, {0, 4, 1.0}, {2, 1, 10.0}, {2, 3, 10.0}});
  const auto top = DegreeSelect(g, 2);
  EXPECT_EQ(top[0], 2);  // weighted degree 20 beats degree-3 node 0
}

}  // namespace
}  // namespace cfcm
