// Lazy-greedy (CELF) selection layer (DESIGN.md §13).
//
// 1. LazyHeap is a deterministic indexed max-heap: (key desc, id asc),
//    in-place re-keying, O(1) membership.
// 2. On the pinned regression graphs the lazy path selects bitwise
//    identical groups to the exhaustive scan — every seed, unit and
//    weighted, both sampled solvers, any thread count.
// 3. The pruning path is semantically correct: on a deterministic
//    proportional-decay oracle the lazy loop reproduces the exact
//    greedy sequence while re-scoring strictly fewer candidates.
// 4. The cross-round forest-reuse pre-screen falls back to fresh
//    sampling when the Bernstein widths cannot certify a winner, so
//    enabling it never changes the selected group.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cfcm/forest_cfcm.h"
#include "cfcm/lazy_greedy.h"
#include "cfcm/options.h"
#include "cfcm/schur_cfcm.h"
#include "graph/datasets.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

CfcmOptions Opts(uint64_t seed, SelectionMode mode) {
  CfcmOptions options;
  options.seed = seed;
  options.num_threads = 1;
  options.selection = mode;
  return options;
}

// ------------------------------------------------------------- LazyHeap

TEST(LazyHeapTest, PopsInKeyOrderWithIdTieBreak) {
  LazyHeap heap;
  heap.Reset(8);
  heap.Push(3, 1.0, 1.0, 0);
  heap.Push(1, 2.0, 2.0, 0);
  heap.Push(5, 2.0, 2.0, 0);  // tie with 1: lower id must pop first
  heap.Push(0, 0.5, 0.5, 0);
  heap.Push(7, 3.0, 3.0, 0);

  std::vector<NodeId> order;
  while (!heap.empty()) order.push_back(heap.Pop().id);
  EXPECT_EQ(order, (std::vector<NodeId>{7, 1, 5, 3, 0}));
}

TEST(LazyHeapTest, UpdateReKeysInPlace) {
  LazyHeap heap;
  heap.Reset(4);
  heap.Push(0, 1.0, 1.0, 0);
  heap.Push(1, 2.0, 2.0, 0);
  heap.Push(2, 3.0, 3.0, 0);
  ASSERT_TRUE(heap.Contains(1));

  heap.Update(1, 4.0, 4.0, 1);  // raise above the root
  EXPECT_EQ(heap.Top().id, 1);
  EXPECT_EQ(heap.Top().round, 1);

  heap.Update(1, 0.5, 0.5, 2);  // sink below everything
  EXPECT_EQ(heap.Top().id, 2);
  EXPECT_EQ(heap.Pop().id, 2);
  EXPECT_EQ(heap.Pop().id, 0);
  EXPECT_EQ(heap.Pop().id, 1);
  EXPECT_FALSE(heap.Contains(1));
}

TEST(LazyHeapTest, SecondReturnsRunnerUp) {
  LazyHeap heap;
  heap.Reset(4);
  EXPECT_EQ(heap.Second(), nullptr);
  heap.Push(2, 3.0, 3.0, 0);
  EXPECT_EQ(heap.Second(), nullptr);
  heap.Push(0, 1.0, 1.0, 0);
  heap.Push(1, 2.0, 2.0, 0);
  ASSERT_NE(heap.Second(), nullptr);
  EXPECT_EQ(heap.Second()->id, 1);
  EXPECT_DOUBLE_EQ(heap.Second()->key, 2.0);
}

// ------------------------------------- lazy == exhaustive (pinned graphs)

void ExpectLazyMatchesExhaustive(const Graph& g, int k, uint64_t seed) {
  const auto fe = ForestCfcmMaximize(g, k, Opts(seed, SelectionMode::kExhaustive));
  const auto fl = ForestCfcmMaximize(g, k, Opts(seed, SelectionMode::kLazy));
  ASSERT_TRUE(fe.ok());
  ASSERT_TRUE(fl.ok());
  EXPECT_EQ(fe->selected, fl->selected) << "forest seed " << seed;
  const auto se = SchurCfcmMaximize(g, k, Opts(seed, SelectionMode::kExhaustive));
  const auto sl = SchurCfcmMaximize(g, k, Opts(seed, SelectionMode::kLazy));
  ASSERT_TRUE(se.ok());
  ASSERT_TRUE(sl.ok());
  EXPECT_EQ(se->selected, sl->selected) << "schur seed " << seed;
}

TEST(LazyEqualsExhaustiveTest, KarateAllPinnedSeeds) {
  const Graph g = KarateClub();
  for (uint64_t seed : {1, 2, 5}) ExpectLazyMatchesExhaustive(g, 4, seed);
}

TEST(LazyEqualsExhaustiveTest, KarateWeighted) {
  const Graph g = KarateClubWeighted();
  for (uint64_t seed : {1, 2, 5}) ExpectLazyMatchesExhaustive(g, 4, seed);
}

TEST(LazyEqualsExhaustiveTest, ContiguousUsa) {
  ExpectLazyMatchesExhaustive(ContiguousUsa(), 5, 3);
}

TEST(LazyEqualsExhaustiveTest, LazyIsTheDefaultMode) {
  // The pinned-regression suite (weighted_regression_test.cc) runs the
  // solvers with default options; this asserts those pins exercise the
  // lazy path rather than silently testing the exhaustive scan.
  CfcmOptions options;
  EXPECT_EQ(options.selection, SelectionMode::kLazy);
  const auto result = ForestCfcmMaximize(KarateClub(), 4, Opts(1, options.selection));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, (std::vector<NodeId>{0, 25, 16, 18}));
}

// -------------------------------------------- determinism across threads

TEST(LazySelectionDeterminismTest, ThreadCountInvariantOnDecayedGraph) {
  // ba:400 is large enough (n >= 256) to enter the budgeted decayed
  // regime — the path where batches, decay calibration, and reduced
  // forest targets all interact — and must still be a pure function of
  // the seed.
  const Graph g = BarabasiAlbert(400, 4, 1);
  std::vector<NodeId> reference;
  for (int threads : {1, 2, 8}) {
    CfcmOptions options = Opts(9, SelectionMode::kLazy);
    options.num_threads = threads;
    const auto result = ForestCfcmMaximize(g, 6, options);
    ASSERT_TRUE(result.ok());
    if (reference.empty()) {
      reference = result->selected;
    } else {
      EXPECT_EQ(result->selected, reference) << "threads " << threads;
    }
  }
}

// --------------------------------------------- synthetic pruning oracle

TEST(LazyGreedySelectTest, ReproducesExactGreedyOnProportionalDecayOracle) {
  // Deterministic oracle: gain(u | S) = base(u) * 0.8^|S\{first}|, with
  // distinct per-node bases and zero width. Stale keys then order
  // candidates exactly like current gains, so the survival test prunes
  // aggressively and the lazy loop must still return the true greedy
  // sequence (argmax of base, repeatedly).
  const Graph g = KarateClub();
  const NodeId n = g.num_nodes();
  CfcmOptions options = Opts(1, SelectionMode::kLazy);
  ThreadPool& pool = ResolveSamplingPool(options);

  auto base = [n](NodeId u) {
    return 1.0 + static_cast<double>((u * 37) % n);
  };
  std::int64_t oracle_calls = 0;
  auto delta_fn = [&](const std::vector<NodeId>& s_nodes, uint64_t /*seed*/,
                      const DeltaScope& scope) {
    ++oracle_calls;
    DeltaEstimate d;
    d.delta.assign(static_cast<std::size_t>(n), 0.0);
    d.rel.assign(static_cast<std::size_t>(n), 0.0);
    d.forests = 1;
    double scale = 1.0;
    for (std::size_t j = 1; j < s_nodes.size(); ++j) scale *= 0.8;
    for (NodeId u = 0; u < n; ++u) {
      const bool in_s =
          std::find(s_nodes.begin(), s_nodes.end(), u) != s_nodes.end();
      if (in_s) continue;
      if (scope.subset != nullptr && !(*scope.subset)[u]) continue;
      d.delta[u] = base(u) * scale;
    }
    return d;
  };

  const int k = 6;
  const auto result =
      LazyGreedySelect(g, k, options, pool, delta_fn, /*allow_forest_reuse=*/false);
  ASSERT_TRUE(result.ok());

  // Expected: the real first pick, then base() argmax among the rest.
  std::vector<NodeId> expected = {result->selected[0]};
  std::vector<char> taken(static_cast<std::size_t>(n), 0);
  taken[expected[0]] = 1;
  for (int i = 1; i < k; ++i) {
    NodeId best = -1;
    for (NodeId u = 0; u < n; ++u) {
      if (taken[u]) continue;
      if (best < 0 || base(u) > base(best)) best = u;
    }
    taken[best] = 1;
    expected.push_back(best);
  }
  EXPECT_EQ(result->selected, expected);
  // The survival test must have pruned: strictly fewer re-scores than
  // the exhaustive loop's (k-1) full scans of the candidate set.
  EXPECT_LT(result->rescored_candidates,
            static_cast<std::int64_t>(k - 1) * (n - 1));
  EXPECT_GT(result->heap_pops, 0);
}

// ------------------------------------------------- forest-reuse fallback

TEST(LazyForestReuseTest, WideBoundFallbackPreservesSelection) {
  // At the default sampling budget the importance-weighted replay
  // widths are far too wide to certify a winner, so the pre-screen must
  // fall back to fresh sampling and the selection cannot depend on
  // whether reuse is enabled.
  const Graph g = BarabasiAlbert(400, 4, 1);
  CfcmOptions with_reuse = Opts(3, SelectionMode::kLazy);
  with_reuse.lazy_reuse = true;
  CfcmOptions without_reuse = Opts(3, SelectionMode::kLazy);
  without_reuse.lazy_reuse = false;
  const auto a = ForestCfcmMaximize(g, 6, with_reuse);
  const auto b = ForestCfcmMaximize(g, 6, without_reuse);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->selected, b->selected);
}

TEST(LazyForestReuseTest, EscalationReplaysWithinRoundArena) {
  // When a round's first batch fails the survival test, the escalation
  // call replays the round arena instead of re-walking; the replayed
  // forests must show up in the counters. ba:2000 seed 1 escalates in
  // its pre-calibration round (pinned by determinism, like every other
  // trajectory detail).
  const Graph g = BarabasiAlbert(2000, 4, 1);
  const auto result = ForestCfcmMaximize(g, 6, Opts(1, SelectionMode::kLazy));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->forests_reused, 0);
}

// ------------------------------------------- work-counter ordering (§13)

TEST(LazyWorkCountersTest, LazyRescoresFewerCandidatesThanExhaustive) {
  const Graph g = BarabasiAlbert(400, 4, 1);
  const int k = 8;
  const auto ex = ForestCfcmMaximize(g, k, Opts(1, SelectionMode::kExhaustive));
  const auto lz = ForestCfcmMaximize(g, k, Opts(1, SelectionMode::kLazy));
  ASSERT_TRUE(ex.ok());
  ASSERT_TRUE(lz.ok());
  EXPECT_GT(ex->rescored_candidates, 0);
  EXPECT_LT(lz->rescored_candidates, ex->rescored_candidates);
  EXPECT_GT(lz->heap_pops, 0);
  EXPECT_EQ(ex->heap_pops, 0);  // the scan never touches a heap
}

// ------------------------------- weighted hub order (SchurCFCM T roots)

TEST(WeightedHubOrderTest, HubRemovalOrderUsesWeightedDegrees) {
  // Node 4 has only two edges but dominant conductances; the hub order
  // must rank it by weighted degree, ahead of the high-arity node 0.
  const Graph g = BuildWeightedGraph(
      6, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}, {0, 5, 1.0},
          {4, 1, 10.0}, {4, 2, 10.0}});
  const auto order = HubRemovalOrder(g, 2);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 4);  // weighted degree 20 beats degree-4 node 0
  EXPECT_EQ(order[1], 0);
}

TEST(WeightedHubOrderTest, EqualWeightedDegreesKeepHistoricalTieBreak) {
  // Symmetric 4-cycle with uniform conductances: all weighted degrees
  // tie, and the heap must reproduce the historical (pre-weights)
  // tie-break — higher node id first — so unit-weighted graphs keep
  // their pinned T orders bit for bit. The cap clamps to n-2.
  const Graph g = BuildWeightedGraph(
      4, {{0, 1, 2.0}, {1, 2, 2.0}, {2, 3, 2.0}, {3, 0, 2.0}});
  const auto order = HubRemovalOrder(g, 4);
  EXPECT_EQ(order, (std::vector<NodeId>{3, 1}));
}

}  // namespace
}  // namespace cfcm
