#include "serve/catalog.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/datasets.h"

namespace cfcm::serve {
namespace {

TEST(SessionCatalogTest, DefineThenAcquireLoadsLazily) {
  SessionCatalog catalog;
  ASSERT_TRUE(catalog.Define("k", "karate").ok());
  {
    const CatalogStats stats = catalog.stats();
    ASSERT_EQ(stats.sessions.size(), 1u);
    EXPECT_FALSE(stats.sessions[0].resident);
    EXPECT_EQ(stats.loads, 0u);
  }
  auto session = catalog.Acquire("k");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->num_nodes(), 34);
  const CatalogStats stats = catalog.stats();
  EXPECT_TRUE(stats.sessions[0].resident);
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.resident_bytes, (*session)->memory_bytes());

  // Second acquire reuses the resident session (no reload).
  auto again = catalog.Acquire("k");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(session->get(), again->get());
  EXPECT_EQ(catalog.stats().loads, 1u);
}

TEST(SessionCatalogTest, UnknownNamesAndBadSources) {
  SessionCatalog catalog;
  EXPECT_EQ(catalog.Acquire("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.Unload("missing").code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.Forget("missing").code(), StatusCode::kNotFound);
  EXPECT_FALSE(catalog.Define("", "karate").ok());
  EXPECT_FALSE(catalog.Define("g", "").ok());

  ASSERT_TRUE(catalog.Define("bad", "ba:not-a-spec").ok());
  auto session = catalog.Acquire("bad");
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
  // The error names the graph and its source for debuggability.
  EXPECT_NE(session.status().message().find("bad"), std::string::npos);
}

TEST(SessionCatalogTest, RedefinitionRules) {
  SessionCatalog catalog;
  ASSERT_TRUE(catalog.Define("g", "karate").ok());
  EXPECT_TRUE(catalog.Define("g", "karate").ok());  // same source: no-op
  EXPECT_EQ(catalog.Define("g", "usa").code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(catalog.Forget("g").ok());
  EXPECT_TRUE(catalog.Define("g", "usa").ok());
}

TEST(SessionCatalogTest, UnloadKeepsDefinitionForgetRemovesIt) {
  SessionCatalog catalog;
  ASSERT_TRUE(catalog.Define("g", "karate").ok());
  ASSERT_TRUE(catalog.Acquire("g").ok());
  ASSERT_TRUE(catalog.Unload("g").ok());
  EXPECT_EQ(catalog.stats().resident_bytes, 0u);
  EXPECT_FALSE(catalog.stats().sessions[0].resident);
  // Still defined: acquire transparently reloads.
  auto session = catalog.Acquire("g");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(catalog.stats().loads, 2u);

  ASSERT_TRUE(catalog.Forget("g").ok());
  EXPECT_TRUE(catalog.Names().empty());
  EXPECT_EQ(catalog.Acquire("g").status().code(), StatusCode::kNotFound);
}

TEST(SessionCatalogTest, EvictsLruUnderByteBudgetAndReloads) {
  // Budget fits roughly one karate-sized session, so loading a second
  // graph must evict the least recently used one.
  SessionCatalog probe;
  ASSERT_TRUE(probe.Define("k", "karate").ok());
  const std::size_t karate_bytes = (*probe.Acquire("k"))->memory_bytes();

  CatalogOptions options;
  options.memory_budget_bytes = karate_bytes + karate_bytes / 2;
  SessionCatalog catalog(options);
  ASSERT_TRUE(catalog.Define("a", "karate").ok());
  ASSERT_TRUE(catalog.Define("b", "grid:6x6").ok());
  ASSERT_TRUE(catalog.Define("c", "usa").ok());

  ASSERT_TRUE(catalog.Acquire("a").ok());
  ASSERT_TRUE(catalog.Acquire("b").ok());  // over budget: evicts a
  {
    const CatalogStats stats = catalog.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_FALSE(stats.sessions[0].resident);  // "a" (sorted by name)
    EXPECT_TRUE(stats.sessions[1].resident);   // "b"
    EXPECT_LE(stats.resident_bytes, options.memory_budget_bytes);
  }

  // Load c on top; the newly acquired session is never its own victim.
  ASSERT_TRUE(catalog.Acquire("b").ok());
  ASSERT_TRUE(catalog.Acquire("c").ok());
  {
    const CatalogStats stats = catalog.stats();
    EXPECT_GE(stats.evictions, 1u);
    EXPECT_TRUE(stats.sessions[2].resident);  // "c" just loaded
  }

  // The evicted name transparently reloads on demand.
  auto again = catalog.Acquire("a");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->num_nodes(), 34);
  EXPECT_GE(catalog.stats().loads, 4u);
}

TEST(SessionCatalogTest, LeasesSurviveEviction) {
  SessionCatalog probe;
  ASSERT_TRUE(probe.Define("k", "karate").ok());
  const std::size_t karate_bytes = (*probe.Acquire("k"))->memory_bytes();

  CatalogOptions options;
  options.memory_budget_bytes = karate_bytes + 1;
  SessionCatalog catalog(options);
  ASSERT_TRUE(catalog.Define("a", "karate").ok());
  ASSERT_TRUE(catalog.Define("b", "usa").ok());
  auto lease = catalog.Acquire("a");
  ASSERT_TRUE(lease.ok());
  std::weak_ptr<engine::GraphSession> weak = *lease;
  ASSERT_TRUE(catalog.Acquire("b").ok());  // evicts a
  ASSERT_EQ(catalog.stats().evictions, 1u);
  // The lease still works: ref-counting keeps the evicted session alive.
  EXPECT_EQ((*lease)->num_nodes(), 34);
  EXPECT_TRUE((*lease)->is_connected());
  lease = Status::NotFound("drop");  // release the lease
  EXPECT_TRUE(weak.expired());       // now the memory is actually gone
}

TEST(SessionCatalogTest, SessionsShareOneWorkerPool) {
  SessionCatalog catalog;
  ASSERT_TRUE(catalog.Define("a", "karate").ok());
  ASSERT_TRUE(catalog.Define("b", "usa").ok());
  auto a = catalog.Acquire("a");
  auto b = catalog.Acquire("b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(&(*a)->pool(), &(*b)->pool());
  EXPECT_EQ(&(*a)->pool(), &catalog.pool());
}

TEST(SessionCatalogTest, ConcurrentAcquiresLoadEachGraphOnce) {
  SessionCatalog catalog;
  ASSERT_TRUE(catalog.Define("a", "karate").ok());
  ASSERT_TRUE(catalog.Define("b", "grid:8x8").ok());
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<engine::GraphSession>> sessions(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&catalog, &sessions, t] {
      auto session = catalog.Acquire(t % 2 == 0 ? "a" : "b");
      ASSERT_TRUE(session.ok());
      sessions[t] = *session;
    });
  }
  for (std::thread& thread : threads) thread.join();
  // All even slots share one session object, all odd slots the other.
  for (int t = 2; t < 8; t += 2) EXPECT_EQ(sessions[0].get(), sessions[t].get());
  for (int t = 3; t < 8; t += 2) EXPECT_EQ(sessions[1].get(), sessions[t].get());
  EXPECT_EQ(catalog.stats().loads, 2u);
}

}  // namespace
}  // namespace cfcm::serve
