// Wire-level contract of "solver_backend" (DESIGN.md §14): requests
// opt into a Laplacian kernel, responses name the resolved one, the
// augment budget rejection carries a structured details object, and
// the result cache keys on the backend. Drives ServeHandler directly —
// the transport adds nothing to this contract.
#include <string>

#include <gtest/gtest.h>

#include "serve/json.h"
#include "serve/protocol.h"

namespace cfcm::serve {
namespace {

JsonValue Call(ServeHandler& handler, const std::string& line) {
  return handler.HandleLine(line);
}

std::string Field(const JsonValue& response, const std::string& key) {
  const JsonValue* field = response.Find(key);
  return field != nullptr && field->is_string() ? field->as_string() : "";
}

TEST(ServeSolverBackendTest, SolveResponseNamesResolvedBackend) {
  ServeHandler handler{HandlerOptions{}};
  ASSERT_EQ(Field(Call(handler,
                       R"({"op":"load","graph":"g","source":"karate"})"),
                  "status"),
            "ok");

  const JsonValue dense = Call(
      handler, R"({"op":"solve","graph":"g","algorithm":"exact","k":3})");
  EXPECT_EQ(Field(dense, "status"), "ok");
  EXPECT_EQ(Field(dense, "solver_backend"), "dense");  // kAuto on n=34

  const JsonValue sparse = Call(
      handler,
      R"({"op":"solve","graph":"g","algorithm":"exact","k":3,)"
      R"("solver_backend":"sparse_ldlt"})");
  EXPECT_EQ(Field(sparse, "status"), "ok");
  EXPECT_EQ(Field(sparse, "solver_backend"), "sparse_ldlt");
  // Different backend = different cache identity: no aliased hit even
  // though every other key field matches.
  EXPECT_EQ(Field(sparse, "cache"), "miss");
  EXPECT_EQ(sparse.Find("selection")->array().size(),
            dense.Find("selection")->array().size());

  // Replaying each request hits its own entry.
  EXPECT_EQ(Field(Call(handler,
                       R"({"op":"solve","graph":"g","algorithm":"exact",)"
                       R"("k":3,"solver_backend":"sparse_ldlt"})"),
                  "cache"),
            "hit");
}

TEST(ServeSolverBackendTest, EvaluateAndAugmentNameBackend) {
  ServeHandler handler{HandlerOptions{}};
  ASSERT_EQ(Field(Call(handler,
                       R"({"op":"load","graph":"g","source":"karate"})"),
                  "status"),
            "ok");

  const JsonValue eval = Call(
      handler,
      R"({"op":"evaluate","graph":"g","group":[0,33],)"
      R"("solver_backend":"sparse_ldlt"})");
  EXPECT_EQ(Field(eval, "status"), "ok");
  EXPECT_EQ(Field(eval, "solver_backend"), "sparse_ldlt");

  const JsonValue augment = Call(
      handler,
      R"({"op":"augment","graph":"g","group":[0,33],"k":1,)"
      R"("solver_backend":"cg"})");
  EXPECT_EQ(Field(augment, "status"), "ok");
  EXPECT_EQ(Field(augment, "solver_backend"), "cg");
}

TEST(ServeSolverBackendTest, BadBackendStringIsStructuredError) {
  ServeHandler handler{HandlerOptions{}};
  ASSERT_EQ(Field(Call(handler,
                       R"({"op":"load","graph":"g","source":"karate"})"),
                  "status"),
            "ok");
  const JsonValue response = Call(
      handler,
      R"({"op":"solve","graph":"g","algorithm":"exact","k":3,)"
      R"("solver_backend":"bogus"})");
  EXPECT_EQ(Field(response, "status"), "error");
  const JsonValue* error = response.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(Field(*error, "code"), "invalid_argument");
}

TEST(ServeSolverBackendTest, AugmentBudgetRejectionCarriesDetails) {
  HandlerOptions options;
  options.engine.augment_max_n = 8;  // Karate: 32 remaining > 8 dense
  ServeHandler handler(options);
  ASSERT_EQ(Field(Call(handler,
                       R"({"op":"load","graph":"g","source":"karate"})"),
                  "status"),
            "ok");

  const JsonValue refused = Call(
      handler,
      R"({"op":"augment","graph":"g","group":[0,33],"k":1,"id":"req-7"})");
  EXPECT_EQ(Field(refused, "status"), "error");
  const JsonValue* error = refused.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(Field(*error, "code"), "invalid_argument");
  const JsonValue* details = error->Find("details");
  ASSERT_NE(details, nullptr) << "budget rejection must carry details";
  EXPECT_EQ(Field(*details, "reason"), "augment_work_budget");
  EXPECT_EQ(Field(*details, "backend"), "dense");
  EXPECT_EQ(details->Find("remaining")->as_int(), 32);
  EXPECT_EQ(details->Find("limit")->as_int(), 8);
  EXPECT_EQ(details->Find("k")->as_int(), 1);
  // The request id is echoed so callers can correlate the refusal.
  ASSERT_NE(refused.Find("id"), nullptr);
  EXPECT_EQ(Field(refused, "id"), "req-7");

  // The same request on the factor budget (8 * 32 = 256 >= 32) runs.
  const JsonValue admitted = Call(
      handler,
      R"({"op":"augment","graph":"g","group":[0,33],"k":1,)"
      R"("solver_backend":"sparse_ldlt"})");
  EXPECT_EQ(Field(admitted, "status"), "ok");
  EXPECT_EQ(Field(admitted, "solver_backend"), "sparse_ldlt");
}

}  // namespace
}  // namespace cfcm::serve
