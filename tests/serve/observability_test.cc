// Observability through the serving protocol (DESIGN.md §12): the
// `metrics` op in both formats, opt-in request tracing with span
// breakdowns, trace-id echo, and the coherent `observed` block in
// `stats`.
//
// The metrics registry is process-global and other tests in this binary
// also feed it, so every numeric assertion here is a delta or a lower
// bound, never an absolute equality against the whole-process total.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "serve/protocol.h"

namespace cfcm::serve {
namespace {

JsonValue Call(ServeHandler& handler, const std::string& line) {
  JsonValue response = handler.HandleLine(line);
  EXPECT_TRUE(response.is_object()) << line;
  return response;
}

std::string StrField(const JsonValue& value, const std::string& key) {
  const JsonValue* field = value.Find(key);
  return field != nullptr && field->is_string() ? field->as_string() : "";
}

int64_t IntField(const JsonValue& value, const std::string& key) {
  const JsonValue* field = value.Find(key);
  return field != nullptr && field->is_int() ? field->as_int() : -1;
}

// A counter that no request has resolved yet is simply absent from the
// registry — read that as 0 when computing deltas.
int64_t CounterOrZero(const JsonValue& counters, const std::string& key) {
  const JsonValue* field = counters.Find(key);
  return field != nullptr && field->is_int() ? field->as_int() : 0;
}

void LoadKarate(ServeHandler& handler, const std::string& name) {
  const JsonValue loaded = Call(
      handler,
      R"({"op":"load","graph":")" + name + R"(","source":"karate"})");
  ASSERT_EQ(StrField(loaded, "status"), "ok");
}

std::string SolveLine(const std::string& graph, int seed,
                      const std::string& extra = "") {
  return R"({"op":"solve","graph":")" + graph +
         R"(","algorithm":"forest","k":3,"eps":0.3,"seed":)" +
         std::to_string(seed) + extra + "}";
}

TEST(ObservabilityTest, MetricsOpCountsSolveRequests) {
  ServeHandler handler{{}};
  LoadKarate(handler, "m1");

  const JsonValue before = Call(handler, R"({"op":"metrics"})");
  ASSERT_EQ(StrField(before, "status"), "ok");
  const int64_t requests_before =
      CounterOrZero(*before.Find("counters"), "serve.solve.requests");

  ASSERT_EQ(StrField(Call(handler, SolveLine("m1", 5)), "status"), "ok");
  ASSERT_EQ(StrField(Call(handler, SolveLine("m1", 5)), "status"), "ok");

  const JsonValue after = Call(handler, R"({"op":"metrics"})");
  const JsonValue* counters = after.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(IntField(*counters, "serve.solve.requests"),
            requests_before + 2);
  // The solve latency histogram gained samples and reports a coherent
  // shape: count >= 2 and ordered percentiles.
  const JsonValue* histograms = after.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* solve_latency = histograms->Find("serve.solve.latency_us");
  ASSERT_NE(solve_latency, nullptr);
  EXPECT_GE(IntField(*solve_latency, "count"), 2);
  EXPECT_LE(IntField(*solve_latency, "p50"), IntField(*solve_latency, "p99"));
  EXPECT_LE(IntField(*solve_latency, "p99"), IntField(*solve_latency, "max"));
  // The runtime's sampling counters flowed up through the same registry.
  EXPECT_GT(IntField(*counters, "runtime.walk_steps"), 0);
}

TEST(ObservabilityTest, MetricsOpPrometheusFormat) {
  ServeHandler handler{{}};
  LoadKarate(handler, "m2");
  ASSERT_EQ(StrField(Call(handler, SolveLine("m2", 6)), "status"), "ok");

  const JsonValue response =
      Call(handler, R"({"op":"metrics","format":"prometheus"})");
  ASSERT_EQ(StrField(response, "status"), "ok");
  const std::string text = StrField(response, "text");
  EXPECT_NE(text.find("# TYPE serve_solve_latency_us histogram"),
            std::string::npos)
      << text.substr(0, 400);
  EXPECT_NE(text.find("serve_solve_latency_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("serve_solve_requests"), std::string::npos);

  const JsonValue bad =
      Call(handler, R"({"op":"metrics","format":"xml"})");
  EXPECT_EQ(StrField(bad, "status"), "error");
}

TEST(ObservabilityTest, TraceTrueReturnsSpanBreakdown) {
  ServeHandler handler{{}};
  LoadKarate(handler, "t1");

  // Cache-miss solve: the trace must carry the solver phase with its
  // sampling annotations, and the top-level span sum must account for
  // the bulk of the reported total (phase sum ~ total: everything the
  // handler does is inside some span; only response assembly is not).
  const JsonValue traced = Call(
      handler, SolveLine("t1", 7, R"(,"trace":true,"trace_id":"req-42")"));
  ASSERT_EQ(StrField(traced, "status"), "ok");
  EXPECT_EQ(StrField(traced, "trace_id"), "req-42");
  const JsonValue* trace = traced.Find("trace");
  ASSERT_NE(trace, nullptr);
  const int64_t total_us = IntField(*trace, "total_us");
  const int64_t span_total_us = IntField(*trace, "span_total_us");
  EXPECT_GE(total_us, span_total_us);
  EXPECT_GE(2 * span_total_us, total_us)
      << "spans cover less than half the request: " << traced.Serialize();
  bool saw_solver = false;
  bool solver_has_walk_steps = false;
  for (const JsonValue& span : trace->Find("spans")->array()) {
    if (StrField(span, "name") == "solver") {
      saw_solver = true;
      solver_has_walk_steps = IntField(span, "walk_steps") > 0;
    }
  }
  EXPECT_TRUE(saw_solver) << traced.Serialize();
  EXPECT_TRUE(solver_has_walk_steps) << traced.Serialize();

  // Replay = cache hit: the trace now shows the lookup, not the solver.
  const JsonValue hit =
      Call(handler, SolveLine("t1", 7, R"(,"trace":true)"));
  ASSERT_EQ(StrField(hit, "status"), "ok");
  EXPECT_FALSE(StrField(hit, "trace_id").empty());  // generated this time
  bool saw_hit_annotation = false;
  for (const JsonValue& span : hit.Find("trace")->Find("spans")->array()) {
    if (StrField(span, "name") == "cache_lookup") {
      saw_hit_annotation = IntField(span, "hit") == 1;
    }
  }
  EXPECT_TRUE(saw_hit_annotation) << hit.Serialize();
}

TEST(ObservabilityTest, UntracedResponsesOmitTraceUnlessIdSupplied) {
  ServeHandler handler{{}};
  LoadKarate(handler, "t2");

  // No "trace" and no "trace_id": the response carries neither — this
  // is what keeps cache hits byte-identical to their misses.
  const JsonValue plain = Call(handler, SolveLine("t2", 8));
  EXPECT_EQ(plain.Find("trace"), nullptr);
  EXPECT_EQ(plain.Find("trace_id"), nullptr);

  // A client-supplied trace_id is echoed for correlation even without
  // the full span breakdown.
  const JsonValue echoed = Call(
      handler, SolveLine("t2", 8, R"(,"trace_id":"corr-7")"));
  EXPECT_EQ(StrField(echoed, "trace_id"), "corr-7");
  EXPECT_EQ(echoed.Find("trace"), nullptr);
}

TEST(ObservabilityTest, StatsObservedBlockIsCoherent) {
  ServeHandler handler{{}};
  LoadKarate(handler, "s1");
  ASSERT_EQ(StrField(Call(handler, SolveLine("s1", 9)), "status"), "ok");
  ASSERT_EQ(StrField(Call(handler, SolveLine("s1", 9)), "status"), "ok");

  const JsonValue stats = Call(handler, R"({"op":"stats"})");
  ASSERT_EQ(StrField(stats, "status"), "ok");
  const JsonValue* observed = stats.Find("observed");
  ASSERT_NE(observed, nullptr);
  const JsonValue* cache = observed->Find("cache");
  ASSERT_NE(cache, nullptr);
  // The bugfix this block exists for: hits, misses and lookups come
  // from ONE registry snapshot, so the arithmetic always closes.
  EXPECT_EQ(IntField(*cache, "lookups"),
            IntField(*cache, "hits") + IntField(*cache, "misses"));
  const JsonValue* latency = observed->Find("latency");
  ASSERT_NE(latency, nullptr);
  const JsonValue* solve = latency->Find("solve");
  ASSERT_NE(solve, nullptr);
  for (const char* key : {"count", "p50_us", "p95_us", "p99_us", "max_us"}) {
    EXPECT_GE(IntField(*solve, key), 0) << key;
  }
  EXPECT_GE(IntField(*observed->Find("requests")->Find("solve"), "total"), 2);
}

TEST(ObservabilityTest, StatsSurfaceEngineCountersUptimeAndBuild) {
  ServeHandler handler{{}};
  LoadKarate(handler, "s2");
  ASSERT_EQ(StrField(Call(handler, SolveLine("s2", 13)), "status"), "ok");

  const JsonValue stats = Call(handler, R"({"op":"stats"})");
  ASSERT_EQ(StrField(stats, "status"), "ok");
  // Engine linear-algebra counters ride in the same coherent snapshot
  // as the cache/latency numbers (DESIGN.md §15 satellite).
  const JsonValue* linalg = stats.Find("observed")->Find("engine");
  ASSERT_NE(linalg, nullptr) << stats.Serialize();
  linalg = linalg->Find("linalg");
  ASSERT_NE(linalg, nullptr) << stats.Serialize();
  for (const char* key : {"factorizations", "solves", "cg_iterations"}) {
    EXPECT_GE(IntField(*linalg, key), 0) << key;
  }
  EXPECT_GE(IntField(stats, "uptime_s"), 0);
  const JsonValue* build = stats.Find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_FALSE(StrField(*build, "version").empty());
  EXPECT_FALSE(StrField(*build, "compiler").empty());
  EXPECT_FALSE(StrField(*build, "build_type").empty());
  EXPECT_EQ(StrField(*build, "cxx_standard"), "c++20");
}

TEST(ObservabilityTest, FlightzOpReturnsCommittedRecords) {
  ServeHandler handler{{}};
  LoadKarate(handler, "f1");
  ASSERT_EQ(
      StrField(Call(handler, SolveLine("f1", 21,
                                       R"(,"trace_id":"flight-trace")")),
               "status"),
      "ok");
  // An op against a missing graph is an error -> pinned.
  Call(handler, R"({"op":"solve","graph":"missing","k":2})");

  const JsonValue flightz = Call(handler, R"({"op":"flightz","n":16})");
  ASSERT_EQ(StrField(flightz, "status"), "ok");
  EXPECT_GE(IntField(flightz, "committed"), 3);
  const JsonValue* records = flightz.Find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_FALSE(records->array().empty());
  bool saw_traced_solve = false;
  for (const JsonValue& record : records->array()) {
    if (StrField(record, "op") == "solve" &&
        StrField(record, "trace_id") == "flight-trace") {
      saw_traced_solve = true;
      EXPECT_GE(IntField(record, "latency_us"), 0);
      EXPECT_GT(IntField(record, "mono_ns"), 0);
      EXPECT_EQ(record.Find("ok")->as_bool(), true);
      // Flight records carry span timings even though the request never
      // asked for a trace (observation-only: the response had none).
      EXPECT_FALSE(record.Find("spans")->array().empty())
          << record.Serialize();
    }
  }
  EXPECT_TRUE(saw_traced_solve) << flightz.Serialize();
  // The failed solve landed in the pinned ring with its error code.
  const JsonValue* pinned = flightz.Find("pinned");
  ASSERT_NE(pinned, nullptr);
  bool saw_error = false;
  for (const JsonValue& record : pinned->array()) {
    if (StrField(record, "error_code") == "not_found") saw_error = true;
  }
  EXPECT_TRUE(saw_error) << flightz.Serialize();

  // flight_capacity 0 disables the recorder; flightz reports that.
  HandlerOptions disabled;
  disabled.flight_capacity = 0;
  ServeHandler no_flight{disabled};
  const JsonValue err = Call(no_flight, R"({"op":"flightz"})");
  EXPECT_EQ(StrField(err, "status"), "error");
}

TEST(ObservabilityTest, StatsStayCoherentUnderConcurrentTraffic) {
  // The regression this PR fixes: stats used to read cache and catalog
  // counters with separate lock acquisitions, so a reader racing live
  // traffic could see hits+misses inconsistent with each other. Hammer
  // the handler while polling stats; the observed block must close
  // arithmetically in every single poll.
  ServeHandler handler{{}};
  LoadKarate(handler, "c1");

  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&handler, t] {
      for (int i = 0; i < 40; ++i) {
        // Alternate fresh seeds (misses) and a repeated seed (hits).
        (void)handler.HandleLine(
            SolveLine("c1", i % 2 == 0 ? 1000 + t * 100 + i : 999));
      }
    });
  }
  for (int poll = 0; poll < 25; ++poll) {
    const JsonValue stats = handler.HandleLine(R"({"op":"stats"})");
    const JsonValue* cache = stats.Find("observed")->Find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(IntField(*cache, "lookups"),
              IntField(*cache, "hits") + IntField(*cache, "misses"))
        << "poll " << poll;
  }
  for (auto& writer : writers) writer.join();
}

}  // namespace
}  // namespace cfcm::serve
