// End-to-end loopback tests of the serving daemon: a real TCP socket,
// the full protocol, and the acceptance contracts — deterministic cache
// hits and transparent reload after catalog eviction.
#include "serve/server.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/session.h"
#include "graph/datasets.h"
#include "serve/client.h"

namespace cfcm::serve {
namespace {

// Starts a server over a fresh handler on an ephemeral port.
struct TestServer {
  explicit TestServer(HandlerOptions handler_options = {},
                      ServerOptions server_options = {})
      : handler(handler_options), server(&handler, [&] {
          server_options.port = 0;
          return server_options;
        }()) {
    Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~TestServer() { server.Shutdown(); }

  ServeClient Connect() {
    auto client = ServeClient::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  ServeHandler handler;
  Server server;
};

JsonValue Call(ServeClient& client, const std::string& line) {
  EXPECT_TRUE(client.SendLine(line).ok());
  StatusOr<std::string> response = client.ReadLine();
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  StatusOr<JsonValue> parsed = JsonValue::Parse(*response);
  EXPECT_TRUE(parsed.ok()) << *response;
  return *parsed;
}

std::string Field(const JsonValue& response, const std::string& key) {
  const JsonValue* field = response.Find(key);
  return field != nullptr && field->is_string() ? field->as_string() : "";
}

TEST(ServerTest, LoadSolveEvaluateUnloadRoundTrip) {
  TestServer fixture;
  ServeClient client = fixture.Connect();

  const JsonValue loaded =
      Call(client, R"({"op":"load","graph":"g","source":"karate"})");
  EXPECT_EQ(Field(loaded, "status"), "ok");
  EXPECT_EQ(loaded.Find("nodes")->as_int(), 34);
  EXPECT_EQ(loaded.Find("edges")->as_int(), 78);
  EXPECT_EQ(Field(loaded, "fingerprint").size(), 16u);

  const JsonValue solved = Call(
      client,
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"seed":7})");
  EXPECT_EQ(Field(solved, "status"), "ok");
  EXPECT_EQ(Field(solved, "cache"), "miss");
  EXPECT_EQ(solved.Find("selection")->array().size(), 3u);
  EXPECT_GT(solved.Find("cfcc")->as_double(), 0.0);

  const JsonValue evaluated =
      Call(client, R"({"op":"evaluate","graph":"g","group":[0,33,2]})");
  EXPECT_EQ(Field(evaluated, "status"), "ok");
  EXPECT_GT(evaluated.Find("cfcc")->as_double(), 0.0);

  const JsonValue unloaded = Call(client, R"({"op":"unload","graph":"g"})");
  EXPECT_EQ(Field(unloaded, "status"), "ok");
  const JsonValue gone = Call(client, R"({"op":"solve","graph":"g","k":2})");
  EXPECT_EQ(Field(gone, "status"), "error");
  EXPECT_EQ(Field(*gone.Find("error"), "code"), "not_found");
}

// Acceptance: the same request twice returns byte-identical selections,
// with the second marked as a cache hit.
TEST(ServerTest, RepeatedSolveIsByteIdenticalCacheHit) {
  TestServer fixture;
  ServeClient client = fixture.Connect();
  Call(client, R"({"op":"load","graph":"g","source":"karate"})");

  const std::string request =
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"eps":0.3,"seed":11})";
  ASSERT_TRUE(client.SendLine(request).ok());
  const std::string first = *client.ReadLine();
  ASSERT_TRUE(client.SendLine(request).ok());
  const std::string second = *client.ReadLine();

  EXPECT_NE(first.find("\"cache\":\"miss\""), std::string::npos) << first;
  EXPECT_NE(second.find("\"cache\":\"hit\""), std::string::npos) << second;
  // Identical bytes apart from the hit/miss marker: selection, cfcc,
  // forests, walk_steps and even seconds are replayed from the cache.
  std::string normalized = first;
  normalized.replace(normalized.find("\"cache\":\"miss\""), 14,
                     "\"cache\":\"hit\"");
  EXPECT_EQ(normalized, second);

  // A different seed is a different request — miss, and (on karate with
  // forest sampling) typically different bytes.
  const JsonValue other = Call(
      client,
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"eps":0.3,"seed":12})");
  EXPECT_EQ(Field(other, "cache"), "miss");
}

// Acceptance: eviction under a small byte budget unloads the LRU session
// and a subsequent request transparently reloads it, same bytes.
TEST(ServerTest, EvictionThenTransparentReloadKeepsAnswersIdentical) {
  const std::size_t karate_bytes =
      engine::GraphSession(cfcm::KarateClub()).memory_bytes();

  HandlerOptions options;
  options.catalog.memory_budget_bytes = karate_bytes + karate_bytes / 2;
  TestServer fixture{options};
  ServeClient client = fixture.Connect();

  Call(client, R"({"op":"load","graph":"a","source":"karate"})");
  const std::string request =
      R"({"op":"solve","graph":"a","algorithm":"schur","k":3,"seed":5})";
  ASSERT_TRUE(client.SendLine(request).ok());
  const std::string before = *client.ReadLine();

  // Loading two more graphs pushes "a" (the LRU) out of the catalog.
  Call(client, R"({"op":"load","graph":"b","source":"grid:6x6"})");
  Call(client, R"({"op":"load","graph":"c","source":"usa"})");
  const JsonValue stats = Call(client, R"({"op":"stats"})");
  EXPECT_GE(stats.Find("catalog")->Find("evictions")->as_int(), 1);
  bool a_resident = true;
  for (const JsonValue& session :
       stats.Find("catalog")->Find("sessions")->array()) {
    if (Field(session, "name") == "a") {
      a_resident = session.Find("resident")->as_bool();
    }
  }
  EXPECT_FALSE(a_resident);

  // Same request against the evicted graph: transparent reload, and the
  // response is still the byte-identical cached answer.
  ASSERT_TRUE(client.SendLine(request).ok());
  const std::string after = *client.ReadLine();
  std::string normalized = before;
  normalized.replace(normalized.find("\"cache\":\"miss\""), 14,
                     "\"cache\":\"hit\"");
  EXPECT_EQ(normalized, after);

  // And with the cache wiped the reloaded graph still recomputes the
  // same answer — determinism end to end, not just cache replay. Only
  // the wall-time field may differ from the original solve.
  fixture.handler.cache().Clear();
  ASSERT_TRUE(client.SendLine(request).ok());
  const std::string recomputed = *client.ReadLine();
  auto without_seconds = [](const std::string& response) {
    JsonValue parsed = *JsonValue::Parse(response);
    parsed.object().erase("seconds");
    return parsed.Serialize();
  };
  EXPECT_EQ(without_seconds(recomputed), without_seconds(before));
}

TEST(ServerTest, ProtocolErrorsComeBackStructured) {
  TestServer fixture;
  ServeClient client = fixture.Connect();

  const JsonValue bad_json = Call(client, "this is not json");
  EXPECT_EQ(Field(bad_json, "status"), "error");
  EXPECT_EQ(Field(*bad_json.Find("error"), "code"), "invalid_argument");

  const JsonValue bad_op = Call(client, R"({"op":"fly"})");
  EXPECT_EQ(Field(*bad_op.Find("error"), "code"), "invalid_argument");

  const JsonValue no_graph = Call(client, R"({"op":"solve","graph":"nope"})");
  EXPECT_EQ(Field(*no_graph.Find("error"), "code"), "not_found");

  Call(client, R"({"op":"load","graph":"g","source":"karate"})");
  const JsonValue bad_k =
      Call(client, R"({"op":"solve","graph":"g","k":0})");
  EXPECT_EQ(Field(bad_k, "status"), "error");
  const JsonValue bad_group =
      Call(client, R"({"op":"evaluate","graph":"g","group":[0,0]})");
  EXPECT_EQ(Field(*bad_group.Find("error"), "code"), "invalid_argument");
  const JsonValue bad_load =
      Call(client, R"({"op":"load","graph":"x","source":"ba:nope"})");
  EXPECT_EQ(Field(bad_load, "status"), "error");

  // The id member is echoed on success and failure alike.
  const JsonValue with_id =
      Call(client, R"({"op":"stats","id":"req-1"})");
  EXPECT_EQ(Field(with_id, "id"), "req-1");
  const JsonValue err_id = Call(client, R"({"op":"fly","id":17})");
  EXPECT_EQ(err_id.Find("id")->as_int(), 17);
}

TEST(ServerTest, BackpressureRejectsWhenAdmissionQueueIsFull) {
  // Admit-only mode (no workers): the queue fills and stays full, so the
  // overflow rejection is deterministic.
  ServerOptions server_options;
  server_options.num_workers = 0;
  server_options.max_queue = 4;
  TestServer fixture{{}, server_options};
  ServeClient client = fixture.Connect();

  std::string burst;
  for (int i = 0; i < 5; ++i) burst += R"({"op":"stats"})" "\n";
  ASSERT_TRUE(client.SendLine(burst.substr(0, burst.size() - 1)).ok());
  // Exactly one response arrives: the 429-style rejection of request 5.
  StatusOr<std::string> rejection = client.ReadLine();
  ASSERT_TRUE(rejection.ok());
  StatusOr<JsonValue> parsed = JsonValue::Parse(*rejection);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(Field(*parsed, "status"), "error");
  EXPECT_EQ(Field(*parsed->Find("error"), "code"), "over_capacity");
  EXPECT_NE(Field(*parsed->Find("error"), "message").find("429"),
            std::string::npos);
  EXPECT_EQ(fixture.server.stats().rejected.load(), 1u);
  EXPECT_EQ(fixture.server.stats().accepted.load(), 4u);
}

TEST(ServerTest, ConcurrentClientsOnTwoGraphsStayDeterministic) {
  TestServer fixture;
  {
    ServeClient setup = fixture.Connect();
    Call(setup, R"({"op":"load","graph":"a","source":"karate"})");
    Call(setup, R"({"op":"load","graph":"b","source":"grid:5x5"})");
  }

  constexpr int kClients = 4;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&fixture, &responses, c] {
      ServeClient client = fixture.Connect();
      const std::string graph = c % 2 == 0 ? "a" : "b";
      const std::string request = R"({"op":"solve","graph":")" + graph +
                                  R"(","algorithm":"forest","k":2,"seed":3})";
      EXPECT_TRUE(client.SendLine(request).ok());
      responses[c] = *client.ReadLine();
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Same graph -> identical payload regardless of scheduling, modulo the
  // hit/miss marker and wall time: racing clients may each compute the
  // miss independently (same bytes, different seconds) before one insert
  // wins the cache slot.
  auto normalize = [](const std::string& response) {
    JsonValue parsed = *JsonValue::Parse(response);
    parsed.object().erase("seconds");
    parsed.object()["cache"] = "hit";
    return parsed.Serialize();
  };
  EXPECT_EQ(normalize(responses[0]), normalize(responses[2]));
  EXPECT_EQ(normalize(responses[1]), normalize(responses[3]));
  EXPECT_NE(normalize(responses[0]), normalize(responses[1]));
}

TEST(ServerTest, GracefulShutdownViaProtocolOp) {
  auto fixture = std::make_unique<TestServer>();
  const int port = fixture->server.port();
  ServeClient client = fixture->Connect();
  Call(client, R"({"op":"load","graph":"g","source":"karate"})");

  // Wait() must return once a worker executes the shutdown op.
  std::thread waiter([&fixture] { fixture->server.Wait(); });
  const JsonValue response = Call(client, R"({"op":"shutdown"})");
  EXPECT_EQ(Field(response, "status"), "ok");
  waiter.join();

  // The listener is gone: new connections fail.
  auto reconnect = ServeClient::Connect("127.0.0.1", port);
  EXPECT_FALSE(reconnect.ok());
}

}  // namespace
}  // namespace cfcm::serve
