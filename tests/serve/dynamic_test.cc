// Dynamic graph sessions end to end (DESIGN.md §11): the mutation
// pipeline through catalog → session → snapshot, the mutate / augment
// protocol ops, and the cache-soundness-under-mutation acceptance
// proof — byte-identical hit before mutation, guaranteed miss after,
// hit again after the inverse delta.
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/session.h"
#include "graph/datasets.h"
#include "graph/delta.h"
#include "serve/catalog.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace cfcm::serve {
namespace {

// Starts a server over a fresh handler on an ephemeral port.
struct TestServer {
  explicit TestServer(HandlerOptions handler_options = {})
      : handler(handler_options), server(&handler, ServerOptions{.port = 0}) {
    Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~TestServer() { server.Shutdown(); }

  ServeClient Connect() {
    auto client = ServeClient::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  ServeHandler handler;
  Server server;
};

JsonValue Call(ServeClient& client, const std::string& line) {
  EXPECT_TRUE(client.SendLine(line).ok());
  StatusOr<std::string> response = client.ReadLine();
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  StatusOr<JsonValue> parsed = JsonValue::Parse(*response);
  EXPECT_TRUE(parsed.ok()) << *response;
  return *parsed;
}

std::string Field(const JsonValue& response, const std::string& key) {
  const JsonValue* field = response.Find(key);
  return field != nullptr && field->is_string() ? field->as_string() : "";
}

// Acceptance: solve → byte-identical cache hit → mutate → the SAME
// request misses (fingerprint changed) → inverse delta → the original
// bytes hit again. Runs over a real loopback socket.
TEST(DynamicServeTest, MutationInvalidatesAndInverseRestoresCacheHits) {
  TestServer fixture;
  ServeClient client = fixture.Connect();

  const JsonValue loaded =
      Call(client, R"({"op":"load","graph":"g","source":"karate"})");
  ASSERT_EQ(Field(loaded, "status"), "ok");
  const std::string fp0 = Field(loaded, "fingerprint");
  ASSERT_EQ(fp0.size(), 16u);
  EXPECT_EQ(loaded.Find("epoch")->as_int(), 0);

  const std::string request =
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"eps":0.3,"seed":11})";
  ASSERT_TRUE(client.SendLine(request).ok());
  const std::string miss = *client.ReadLine();
  ASSERT_TRUE(client.SendLine(request).ok());
  const std::string hit = *client.ReadLine();
  EXPECT_NE(miss.find("\"cache\":\"miss\""), std::string::npos) << miss;
  EXPECT_NE(hit.find("\"cache\":\"hit\""), std::string::npos) << hit;
  std::string normalized = miss;
  normalized.replace(normalized.find("\"cache\":\"miss\""), 14,
                     "\"cache\":\"hit\"");
  EXPECT_EQ(normalized, hit);  // byte-identical before mutation

  // Mutate: remove karate's {0, 1}. The content fingerprint changes, so
  // the identical request line is a guaranteed miss — no invalidation
  // protocol ran, the key simply changed.
  const JsonValue mutated =
      Call(client, R"({"op":"mutate","graph":"g","remove":[[0,1]]})");
  ASSERT_EQ(Field(mutated, "status"), "ok") << mutated.Serialize();
  EXPECT_EQ(mutated.Find("epoch")->as_int(), 1);
  EXPECT_EQ(mutated.Find("edges")->as_int(), 77);
  EXPECT_TRUE(mutated.Find("connected")->as_bool());
  const std::string fp1 = Field(mutated, "fingerprint");
  EXPECT_NE(fp1, fp0);

  ASSERT_TRUE(client.SendLine(request).ok());
  const std::string after_mutation = *client.ReadLine();
  EXPECT_NE(after_mutation.find("\"cache\":\"miss\""), std::string::npos)
      << after_mutation;

  // Inverse delta: add {0, 1} back. The bytes — and the fingerprint —
  // are restored, so the original cached result hits again.
  const JsonValue reverted =
      Call(client, R"({"op":"mutate","graph":"g","add":[[0,1]]})");
  ASSERT_EQ(Field(reverted, "status"), "ok");
  EXPECT_EQ(Field(reverted, "fingerprint"), fp0);
  EXPECT_EQ(reverted.Find("epoch")->as_int(), 2);
  EXPECT_FALSE(reverted.Find("weighted")->as_bool());  // unit degradation

  ASSERT_TRUE(client.SendLine(request).ok());
  const std::string restored = *client.ReadLine();
  EXPECT_EQ(restored, hit);  // byte-identical to the pre-mutation hit
}

TEST(DynamicServeTest, MutateValidationErrorsComeBackStructured) {
  TestServer fixture;
  ServeClient client = fixture.Connect();
  Call(client, R"({"op":"load","graph":"g","source":"karate"})");

  const JsonValue missing =
      Call(client, R"({"op":"mutate","graph":"g","remove":[[0,9]]})");
  EXPECT_EQ(Field(missing, "status"), "error");
  EXPECT_EQ(Field(*missing.Find("error"), "code"), "not_found");

  const JsonValue bad_weight =
      Call(client, R"({"op":"mutate","graph":"g","reweight":[[0,1,-2]]})");
  EXPECT_EQ(Field(*bad_weight.Find("error"), "code"), "invalid_argument");

  const JsonValue bad_shape =
      Call(client, R"({"op":"mutate","graph":"g","add":[[1]]})");
  EXPECT_EQ(Field(*bad_shape.Find("error"), "code"), "invalid_argument");

  const JsonValue empty = Call(client, R"({"op":"mutate","graph":"g"})");
  EXPECT_EQ(Field(*empty.Find("error"), "code"), "invalid_argument");

  const JsonValue unknown =
      Call(client, R"({"op":"mutate","graph":"nope","add":[[0,1]]})");
  EXPECT_EQ(Field(*unknown.Find("error"), "code"), "not_found");

  // Ids that do not fit NodeId exactly must be rejected, not silently
  // truncated onto a different, valid edge (4294967296 -> 0).
  const JsonValue wide =
      Call(client, R"({"op":"mutate","graph":"g","remove":[[4294967296,1]]})");
  EXPECT_EQ(Field(*wide.Find("error"), "code"), "invalid_argument");
  const JsonValue fractional =
      Call(client, R"({"op":"mutate","graph":"g","remove":[[0.9,1]]})");
  EXPECT_EQ(Field(*fractional.Find("error"), "code"), "invalid_argument");
  const JsonValue wide_group =
      Call(client, R"({"op":"evaluate","graph":"g","group":[4294967296]})");
  EXPECT_EQ(Field(*wide_group.Find("error"), "code"), "invalid_argument");

  // One request must not allocate unboundedly: add_nodes is capped and
  // duplicate augment groups cannot sneak past the dense ceiling.
  const JsonValue huge =
      Call(client, R"({"op":"mutate","graph":"g","add_nodes":1000000000})");
  EXPECT_EQ(Field(*huge.Find("error"), "code"), "invalid_argument");
  const JsonValue dup_group = Call(
      client, R"({"op":"augment","graph":"g","group":[0,0,33],"k":1})");
  EXPECT_EQ(Field(*dup_group.Find("error"), "code"), "invalid_argument");

  // A failed mutation leaves the session untouched: epoch still 0.
  const JsonValue stats = Call(client, R"({"op":"stats"})");
  for (const JsonValue& session :
       stats.Find("catalog")->Find("sessions")->array()) {
    EXPECT_EQ(session.Find("epoch")->as_int(), 0);
    EXPECT_FALSE(session.Find("mutated")->as_bool());
  }
}

TEST(DynamicServeTest, AugmentOpServesGreedyEdgeAdditionAndApplies) {
  TestServer fixture;
  ServeClient client = fixture.Connect();
  Call(client, R"({"op":"load","graph":"g","source":"karate"})");

  // Pure computation first: no mutation, epoch stays 0.
  const JsonValue plan = Call(
      client,
      R"({"op":"augment","graph":"g","group":[0,33],"k":2,"candidates":"any"})");
  ASSERT_EQ(Field(plan, "status"), "ok") << plan.Serialize();
  ASSERT_EQ(plan.Find("added")->array().size(), 2u);
  EXPECT_EQ(plan.Find("trace_after")->array().size(), 2u);
  EXPECT_GT(plan.Find("cfcc_after")->as_double(),
            plan.Find("cfcc_before")->as_double());
  EXPECT_FALSE(plan.Find("applied")->as_bool());
  EXPECT_EQ(plan.Find("epoch"), nullptr);

  const JsonValue stats0 = Call(client, R"({"op":"stats"})");
  EXPECT_EQ(stats0.Find("catalog")->Find("mutations")->as_int(), 0);

  // Now with apply: the chosen edges go through the mutation pipeline.
  const JsonValue applied = Call(
      client,
      R"({"op":"augment","graph":"g","group":[0,33],"k":2,"candidates":"any","apply":true})");
  ASSERT_EQ(Field(applied, "status"), "ok") << applied.Serialize();
  EXPECT_TRUE(applied.Find("applied")->as_bool());
  EXPECT_EQ(applied.Find("epoch")->as_int(), 1);
  EXPECT_EQ(applied.Find("edges")->as_int(), 80);  // 78 + 2

  // The same plan is now stale: those edges exist, so a fresh augment
  // picks different ones (and the greedy trace keeps improving).
  const JsonValue replan = Call(
      client,
      R"({"op":"augment","graph":"g","group":[0,33],"k":1,"candidates":"any"})");
  ASSERT_EQ(Field(replan, "status"), "ok");
  EXPECT_NE(replan.Find("added")->array()[0].Serialize(),
            applied.Find("added")->array()[0].Serialize());

  const JsonValue bad_candidates = Call(
      client,
      R"({"op":"augment","graph":"g","group":[0],"candidates":"all"})");
  EXPECT_EQ(Field(*bad_candidates.Find("error"), "code"), "invalid_argument");
}

TEST(DynamicServeTest, StatsExposeMutationStateAndRechargedBytes) {
  ServeHandler handler{{}};
  auto call = [&](const std::string& line) {
    return handler.HandleLine(line);
  };
  call(R"({"op":"load","graph":"g","source":"karate"})");
  const JsonValue stats0 = call(R"({"op":"stats"})");
  const int64_t bytes0 =
      stats0.Find("catalog")->Find("resident_bytes")->as_int();

  // Growing the graph re-charges the catalog's byte accounting.
  const JsonValue grown = call(
      R"({"op":"mutate","graph":"g","add_nodes":16,"add":[[33,34],[34,35],[35,36],[36,37],[37,38],[38,39],[39,40],[40,41],[41,42],[42,43],[43,44],[44,45],[45,46],[46,47],[47,48],[48,49]]})");
  ASSERT_EQ(Field(grown, "status"), "ok") << grown.Serialize();
  EXPECT_EQ(grown.Find("nodes")->as_int(), 50);

  const JsonValue stats1 = call(R"({"op":"stats"})");
  const JsonValue* catalog = stats1.Find("catalog");
  EXPECT_EQ(catalog->Find("mutations")->as_int(), 1);
  EXPECT_GT(catalog->Find("resident_bytes")->as_int(), bytes0);
  const JsonValue& session = catalog->Find("sessions")->array()[0];
  EXPECT_TRUE(session.Find("mutated")->as_bool());
  EXPECT_EQ(session.Find("epoch")->as_int(), 1);
  EXPECT_EQ(session.Find("bytes")->as_int(),
            catalog->Find("resident_bytes")->as_int());

  // Unload discards the mutations; reload serves the pristine source.
  call(R"({"op":"unload","graph":"g"})");
  call(R"({"op":"load","graph":"g","source":"karate"})");
  const JsonValue fresh = call(R"({"op":"solve","graph":"g","k":2})");
  EXPECT_EQ(Field(fresh, "status"), "ok");
  const JsonValue stats2 = call(R"({"op":"stats"})");
  const JsonValue& reloaded = stats2.Find("catalog")->Find("sessions")->array()[0];
  EXPECT_FALSE(reloaded.Find("mutated")->as_bool());
  EXPECT_EQ(reloaded.Find("epoch")->as_int(), 0);
}

// Acceptance: concurrent in-flight solves during mutations always see a
// coherent snapshot — every response is byte-identical (modulo wall
// time and hit/miss marker) to the deterministic answer for one of the
// two graph versions the mutator toggles between. Runs under TSan in CI.
TEST(DynamicServeTest, ConcurrentSolvesDuringMutationsSeeCoherentVersions) {
  ServeHandler handler{{}};
  const std::string solve_line =
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"eps":0.3,"seed":11})";
  auto normalize = [](JsonValue response) {
    response.object().erase("seconds");
    response.object()["cache"] = "hit";
    return response.Serialize();
  };

  // Version baselines from two throwaway handlers serving each graph
  // variant statically (the second is karate without {0, 1}).
  std::vector<std::string> baselines;
  {
    ServeHandler v0{{}};
    v0.HandleLine(R"({"op":"load","graph":"g","source":"karate"})");
    baselines.push_back(normalize(v0.HandleLine(solve_line)));
    ServeHandler v1{{}};
    v1.HandleLine(R"({"op":"load","graph":"g","source":"karate"})");
    v1.HandleLine(R"({"op":"mutate","graph":"g","remove":[[0,1]]})");
    baselines.push_back(normalize(v1.HandleLine(solve_line)));
  }
  ASSERT_NE(baselines[0], baselines[1]);

  handler.HandleLine(R"({"op":"load","graph":"g","source":"karate"})");
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> solvers;
  for (int t = 0; t < 3; ++t) {
    solvers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::string got = normalize(handler.HandleLine(solve_line));
        if (got != baselines[0] && got != baselines[1]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < 15; ++i) {
    const JsonValue removed =
        handler.HandleLine(R"({"op":"mutate","graph":"g","remove":[[0,1]]})");
    ASSERT_EQ(Field(removed, "status"), "ok");
    const JsonValue added =
        handler.HandleLine(R"({"op":"mutate","graph":"g","add":[[0,1]]})");
    ASSERT_EQ(Field(added, "status"), "ok");
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : solvers) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(DynamicCatalogTest, MutatedSessionsArePinnedFromEviction) {
  const std::size_t karate_bytes =
      engine::GraphSession(cfcm::KarateClub()).memory_bytes();
  CatalogOptions options;
  options.memory_budget_bytes = karate_bytes + karate_bytes / 2;
  SessionCatalog catalog{options};

  ASSERT_TRUE(catalog.Define("a", "karate").ok());
  ASSERT_TRUE(catalog.Define("b", "grid:6x6").ok());
  ASSERT_TRUE(catalog.Define("c", "usa").ok());

  GraphDelta delta;
  delta.RemoveEdge(0, 1);
  auto mutated = catalog.Mutate("a", delta);
  ASSERT_TRUE(mutated.ok()) << mutated.status().ToString();
  EXPECT_EQ(mutated->installed.epoch, 1u);
  EXPECT_EQ(mutated->installed.snapshot->num_edges(), 77);
  EXPECT_EQ(mutated->session->epoch(), 1u);

  // Loading two more graphs would normally evict "a" (the LRU); the
  // mutation pins it, so the budget squeezes the others instead.
  ASSERT_TRUE(catalog.Acquire("b").ok());
  ASSERT_TRUE(catalog.Acquire("c").ok());
  const CatalogStats stats = catalog.stats();
  for (const CatalogSessionInfo& info : stats.sessions) {
    if (info.name == "a") {
      EXPECT_TRUE(info.resident);
      EXPECT_TRUE(info.mutated);
      EXPECT_EQ(info.epoch, 1u);
    }
  }

  // A fresh Acquire of "a" hands back the mutated session, not a
  // reload: the edge is still gone.
  auto again = catalog.Acquire("a");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->num_edges(), 77);
  EXPECT_EQ(again->get(), mutated->session.get());

  // Unload explicitly discards the mutations; reload is pristine.
  ASSERT_TRUE(catalog.Unload("a").ok());
  auto pristine = catalog.Acquire("a");
  ASSERT_TRUE(pristine.ok());
  EXPECT_EQ((*pristine)->num_edges(), 78);
  EXPECT_EQ((*pristine)->epoch(), 0u);
}

TEST(DynamicCatalogTest, FailedMutateAfterSuccessfulOneKeepsEvictionPin) {
  SessionCatalog catalog;
  ASSERT_TRUE(catalog.Define("g", "karate").ok());

  GraphDelta good;
  good.RemoveEdge(0, 1);
  ASSERT_TRUE(catalog.Mutate("g", good).ok());

  GraphDelta bad;
  bad.RemoveEdge(0, 9);  // not an edge
  EXPECT_EQ(catalog.Mutate("g", bad).status().code(), StatusCode::kNotFound);

  // The session still holds an applied mutation, so the pin must
  // survive the failed delta — unpinning would let budget eviction
  // reload the pristine source and silently undo the first mutation.
  const CatalogStats stats = catalog.stats();
  ASSERT_EQ(stats.sessions.size(), 1u);
  EXPECT_TRUE(stats.sessions[0].mutated);
  EXPECT_EQ(stats.sessions[0].epoch, 1u);

  // On a pristine session a failed mutate leaves the entry unpinned.
  ASSERT_TRUE(catalog.Unload("g").ok());
  EXPECT_EQ(catalog.Mutate("g", bad).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(catalog.stats().sessions[0].mutated);
}

TEST(DynamicCatalogTest, MutationsExceedingTheByteBudgetAreRejected) {
  // Mutated sessions are pinned from eviction, so unbounded cumulative
  // growth would make the budget unenforceable; the projected
  // post-delta footprint is checked up front instead.
  const std::size_t karate_bytes =
      engine::GraphSession(cfcm::KarateClub()).memory_bytes();
  CatalogOptions options;
  options.memory_budget_bytes = karate_bytes * 2;
  SessionCatalog catalog{options};
  ASSERT_TRUE(catalog.Define("g", "karate").ok());

  GraphDelta small;
  small.RemoveEdge(0, 1);
  ASSERT_TRUE(catalog.Mutate("g", small).ok());  // fits: fine

  GraphDelta huge;
  huge.AddNodes(100000);
  StatusOr<SessionCatalog::MutateResult> rejected = catalog.Mutate("g", huge);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  // The session is untouched and the accounting stayed within budget.
  auto lease = catalog.Acquire("g");
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ((*lease)->num_nodes(), 34);
  EXPECT_EQ((*lease)->epoch(), 1u);
  EXPECT_LE(catalog.stats().resident_bytes, options.memory_budget_bytes);
}

TEST(DynamicCatalogTest, BudgetAdmissionCountsOtherPinnedSessions) {
  const std::size_t karate_bytes =
      engine::GraphSession(cfcm::KarateClub()).memory_bytes();
  CatalogOptions options;
  // Fits one karate-sized pinned session, not two.
  options.memory_budget_bytes = karate_bytes + karate_bytes / 2;
  SessionCatalog catalog{options};
  ASSERT_TRUE(catalog.Define("a", "karate").ok());
  ASSERT_TRUE(catalog.Define("b", "karate").ok());

  GraphDelta delta;
  delta.RemoveEdge(0, 1);
  ASSERT_TRUE(catalog.Mutate("a", delta).ok());  // alone: fits, pinned

  // The second mutation fits by itself but NOT alongside the pinned
  // "a": two unevictable sessions would sit permanently over budget.
  StatusOr<SessionCatalog::MutateResult> second = catalog.Mutate("b", delta);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);

  // Unpinning "a" (explicit unload) makes room: "b" can mutate now.
  ASSERT_TRUE(catalog.Unload("a").ok());
  EXPECT_TRUE(catalog.Mutate("b", delta).ok());
}

TEST(DynamicCatalogTest, BudgetProjectionSeesWeightDegradingDuplicateAdds) {
  const std::size_t unit_bytes = engine::EstimateSessionBytes(34, 79, false);
  const std::size_t weighted_bytes =
      engine::EstimateSessionBytes(34, 79, true);
  ASSERT_LT(unit_bytes, weighted_bytes);
  CatalogOptions options;
  // Room for the unit-weighted graph, not for the weighted one.
  options.memory_budget_bytes = (unit_bytes + weighted_bytes) / 2;
  SessionCatalog catalog{options};
  ASSERT_TRUE(catalog.Define("g", "karate").ok());

  // A fresh unit edge keeps the graph unit-weighted: admitted.
  GraphDelta fresh;
  fresh.AddEdge(0, 9);  // not a karate edge
  ASSERT_TRUE(catalog.Mutate("g", fresh).ok());
  ASSERT_TRUE(catalog.Unload("g").ok());

  // A weight-1.0 DUPLICATE add sums to conductance 2.0 (parallel
  // conductors), de-degrading the graph to weighted — the projection
  // must price the weight arrays and reject.
  GraphDelta duplicate;
  duplicate.AddEdge(0, 9);
  duplicate.AddEdge(0, 9);
  StatusOr<SessionCatalog::MutateResult> rejected =
      catalog.Mutate("g", duplicate);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------- §16: warm solves and stale answers over the wire

TEST(DynamicServeTest, WarmSolveAfterMutateReportsCountersAndSkipsCache) {
  ServeHandler handler{{}};
  auto call = [&](const std::string& line) { return handler.HandleLine(line); };
  ASSERT_EQ(
      Field(call(R"({"op":"load","graph":"g","source":"karate"})"), "status"),
      "ok");

  const JsonValue stats0 = call(R"({"op":"stats"})");
  const int64_t warm_starts0 = stats0.Find("observed")
                                   ->Find("engine")
                                   ->Find("incremental")
                                   ->Find("warm_starts")
                                   ->as_int();

  const std::string cold_line =
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"eps":0.2,"seed":7})";
  const std::string warm_line =
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"eps":0.2,"seed":7,"warm":true})";
  const JsonValue cold = call(cold_line);
  ASSERT_EQ(Field(cold, "status"), "ok") << cold.Serialize();
  EXPECT_EQ(Field(cold, "warm"), "off");
  EXPECT_FALSE(cold.Find("warm_started")->as_bool());

  ASSERT_EQ(
      Field(call(R"({"op":"mutate","graph":"g","reweight":[[0,1,1.5]]})"),
            "status"),
      "ok");
  const JsonValue warm = call(warm_line);
  ASSERT_EQ(Field(warm, "status"), "ok") << warm.Serialize();
  EXPECT_EQ(Field(warm, "cache"), "miss");
  EXPECT_EQ(Field(warm, "warm"), "on");
  EXPECT_TRUE(warm.Find("warm_started")->as_bool());
  EXPECT_FALSE(warm.Find("cold_fallback")->as_bool());
  ASSERT_NE(warm.Find("forests_resampled"), nullptr);
  ASSERT_NE(warm.Find("swap_moves"), nullptr);

  // Warm answers depend on the session's mutation history and must
  // never enter the result cache: the identical request misses again
  // (served by the identity fast path off the deposited state).
  const JsonValue again = call(warm_line);
  ASSERT_EQ(Field(again, "status"), "ok");
  EXPECT_EQ(Field(again, "cache"), "miss");
  EXPECT_TRUE(again.Find("warm_started")->as_bool());
  EXPECT_EQ(again.Find("selection")->Serialize(),
            warm.Find("selection")->Serialize());

  // The process counters moved and surface through stats.
  const JsonValue stats1 = call(R"({"op":"stats"})");
  EXPECT_GE(stats1.Find("observed")
                ->Find("engine")
                ->Find("incremental")
                ->Find("warm_starts")
                ->as_int(),
            warm_starts0 + 2);

  // A string mode parses too; a bad one is a structured error.
  ASSERT_EQ(
      Field(call(R"({"op":"mutate","graph":"g","reweight":[[0,1,1.6]]})"),
            "status"),
      "ok");
  const JsonValue auto_warm = call(
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"eps":0.2,"seed":7,"warm":"auto"})");
  ASSERT_EQ(Field(auto_warm, "status"), "ok");
  EXPECT_EQ(Field(auto_warm, "warm"), "auto");
  EXPECT_TRUE(auto_warm.Find("warm_started")->as_bool());
  const JsonValue bad = call(
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"warm":"sometimes"})");
  EXPECT_EQ(Field(*bad.Find("error"), "code"), "invalid_argument");
}

TEST(DynamicServeTest, StalenessAnswersFromAncestorCacheEntryWithBound) {
  ServeHandler handler{{}};
  auto call = [&](const std::string& line) { return handler.HandleLine(line); };
  ASSERT_EQ(
      Field(call(R"({"op":"load","graph":"g","source":"karate"})"), "status"),
      "ok");
  const std::string solve_line =
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"eps":0.3,"seed":11})";
  const JsonValue fresh = call(solve_line);
  ASSERT_EQ(Field(fresh, "status"), "ok");
  EXPECT_EQ(Field(fresh, "cache"), "miss");

  // A reweight-only delta is Loewner-boundable: doubling one edge's
  // conductance bounds the CFCC change by the weight ratios, so the
  // epoch-0 cache entry can answer with C' in [1.0*C, 2.0*C].
  ASSERT_EQ(
      Field(call(R"({"op":"mutate","graph":"g","reweight":[[0,1,2.0]]})"),
            "status"),
      "ok");

  // Without a staleness budget the request is a plain miss (re-solved).
  const std::string stale_line =
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"eps":0.3,"seed":11,"staleness":{"max_epochs":2}})";
  const JsonValue stale = call(stale_line);
  ASSERT_EQ(Field(stale, "status"), "ok") << stale.Serialize();
  EXPECT_EQ(Field(stale, "cache"), "stale");
  EXPECT_EQ(stale.Find("cfcc")->as_double(), fresh.Find("cfcc")->as_double());
  const JsonValue* bound = stale.Find("staleness");
  ASSERT_NE(bound, nullptr);
  EXPECT_EQ(bound->Find("epochs")->as_int(), 1);
  const double lo = bound->Find("cfcc_lo_factor")->as_double();
  const double hi = bound->Find("cfcc_hi_factor")->as_double();
  EXPECT_DOUBLE_EQ(lo, 1.0);  // conductance only grew
  EXPECT_DOUBLE_EQ(hi, 2.0);  // by at most the ratio 2.0
  EXPECT_LE(bound->Find("cfcc_lo")->as_double(),
            bound->Find("cfcc_hi")->as_double());

  // An edge REMOVAL is not reweight-boundable; the ancestor entry must
  // not be served across it.
  ASSERT_EQ(Field(call(R"({"op":"mutate","graph":"g","remove":[[0,1]]})"),
                  "status"),
            "ok");
  const JsonValue unbounded = call(stale_line);
  ASSERT_EQ(Field(unbounded, "status"), "ok");
  EXPECT_EQ(Field(unbounded, "cache"), "miss");

  const JsonValue bad = call(
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"staleness":{"max_epochs":999}})");
  EXPECT_EQ(Field(*bad.Find("error"), "code"), "invalid_argument");
}

TEST(DynamicCatalogTest, MutateLeasesPredecessorSnapshotOneDeep) {
  SessionCatalog catalog;
  ASSERT_TRUE(catalog.Define("g", "karate").ok());
  auto lease = catalog.Acquire("g");
  ASSERT_TRUE(lease.ok());
  const auto epoch0 = (*lease)->snapshot();

  GraphDelta d1;
  d1.RemoveEdge(0, 1);
  auto first = catalog.Mutate("g", d1);
  ASSERT_TRUE(first.ok());
  // The retired snapshot is handed back AND kept alive one epoch deep,
  // so in-flight warm state targeting it stays lockable.
  ASSERT_NE(first->predecessor, nullptr);
  EXPECT_EQ(first->predecessor.get(), epoch0.get());
  EXPECT_EQ(first->predecessor->num_edges(), 78);
  EXPECT_EQ(first->installed.snapshot->num_edges(), 77);

  GraphDelta d2;
  d2.AddEdge(0, 1);
  auto second = catalog.Mutate("g", d2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->predecessor.get(), first->installed.snapshot.get());
}

// Acceptance (§16): warm solves racing mutation churn never crash, tear
// state, or produce an error — every response is a well-formed ok with
// a coherent warm/cold marker. The predecessor lease keeps the retired
// snapshot alive while a warm solve may still be resolving against it.
// Runs under TSan in CI.
TEST(DynamicServeTest, ConcurrentWarmSolvesDuringMutationChurn) {
  ServeHandler handler{{}};
  handler.HandleLine(R"({"op":"load","graph":"g","source":"karate"})");
  const std::string warm_line =
      R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"eps":0.3,"seed":11,"warm":"auto"})";
  handler.HandleLine(warm_line);  // seed the warm chain

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<int> warm_hits{0};
  std::vector<std::thread> solvers;
  for (int t = 0; t < 3; ++t) {
    solvers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const JsonValue response = handler.HandleLine(warm_line);
        const JsonValue* status = response.Find("status");
        if (status == nullptr || !status->is_string() ||
            status->as_string() != "ok") {
          errors.fetch_add(1);
          continue;
        }
        const JsonValue* started = response.Find("warm_started");
        if (started != nullptr && started->is_bool() && started->as_bool()) {
          warm_hits.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < 12; ++i) {
    const JsonValue grown = handler.HandleLine(
        R"({"op":"mutate","graph":"g","reweight":[[0,1,)" +
        std::to_string(1.0 + 0.01 * (i + 1)) + "]]}");
    ASSERT_EQ(Field(grown, "status"), "ok");
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : solvers) thread.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(DynamicCatalogTest, MutateUnknownNameIsNotFound) {
  SessionCatalog catalog;
  GraphDelta delta;
  delta.AddEdge(0, 1);
  EXPECT_EQ(catalog.Mutate("nope", delta).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace cfcm::serve
