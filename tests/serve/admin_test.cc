// Admin diagnostics plane (DESIGN.md §15): a real second HTTP listener
// next to the protocol port — /metrics freshness and exposition shape,
// /healthz liveness, the /readyz high-watermark flip, /statusz JSON,
// /flightz records, and the 404/405 edges.
#include "serve/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/server.h"

namespace cfcm::serve {
namespace {

// One blocking HTTP exchange against the admin plane; returns the full
// response (status line + headers + body), "" on socket failure.
std::string HttpRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& path) {
  return HttpRequest(port, "GET " + path +
                               " HTTP/1.1\r\nHost: t\r\n"
                               "Connection: close\r\n\r\n");
}

std::string Body(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

struct AdminFixture {
  explicit AdminFixture(HandlerOptions handler_options = {},
                        ServerOptions server_options = {})
      : handler(handler_options), server(&handler, [&] {
          server_options.port = 0;
          server_options.admin_port = 0;
          server_options.watchdog_interval_ms = 0;  // scrape-driven ticks
          return server_options;
        }()) {
    const Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    EXPECT_GT(server.admin_port(), 0);
  }
  ~AdminFixture() { server.Shutdown(); }

  ServeHandler handler;
  Server server;
};

TEST(AdminPlaneTest, MetricsEndpointServesFreshPrometheusText) {
  AdminFixture fixture;
  {
    auto client = ServeClient::Connect("127.0.0.1", fixture.server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(
        client->SendLine(R"({"op":"load","graph":"g","source":"karate"})")
            .ok());
    ASSERT_TRUE(client->ReadLine().ok());
    ASSERT_TRUE(
        client
            ->SendLine(
                R"({"op":"solve","graph":"g","algorithm":"forest","k":3,"seed":4})")
            .ok());
    ASSERT_TRUE(client->ReadLine().ok());
  }
  const std::string response =
      HttpGet(fixture.server.admin_port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = Body(response);
  EXPECT_NE(body.find("# HELP "), std::string::npos);
  EXPECT_NE(body.find("# TYPE "), std::string::npos);
  EXPECT_NE(body.find("serve_solve_latency_us_bucket{le=\""),
            std::string::npos);
  // The scrape itself refreshes the watchdog gauges, so the resource
  // and catalog gauges are present without any sampling thread.
#if defined(__linux__)
  EXPECT_NE(body.find("process_rss_bytes"), std::string::npos);
#endif
  EXPECT_NE(body.find("catalog_bytes"), std::string::npos);
  EXPECT_NE(body.find("serve_queue_depth"), std::string::npos);
}

TEST(AdminPlaneTest, HealthzAnswersOkWhileRunning) {
  AdminFixture fixture;
  const std::string response =
      HttpGet(fixture.server.admin_port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_EQ(Body(response), "ok\n");
}

TEST(AdminPlaneTest, ReadyzFlips503WhenQueueCrossesHighWatermark) {
  // Admit-only mode: no workers ever drain the queue, so filling it past
  // the watermark is deterministic (same trick as the backpressure
  // test).
  ServerOptions server_options;
  server_options.num_workers = 0;
  server_options.max_queue = 4;
  AdminFixture fixture{{}, server_options};
  EXPECT_EQ(fixture.server.queue_high_watermark(), 3u);

  const std::string ready = HttpGet(fixture.server.admin_port(), "/readyz");
  EXPECT_NE(ready.find("HTTP/1.1 200 OK"), std::string::npos) << ready;
  EXPECT_EQ(Body(ready), "ready\n");

  auto client = ServeClient::Connect("127.0.0.1", fixture.server.port());
  ASSERT_TRUE(client.ok());
  std::string burst;
  for (int i = 0; i < 4; ++i) burst += R"({"op":"stats"})" "\n";
  ASSERT_TRUE(client->SendLine(burst.substr(0, burst.size() - 1)).ok());

  // The reader thread admits asynchronously; poll until the flip.
  std::string not_ready;
  for (int i = 0; i < 500; ++i) {
    not_ready = HttpGet(fixture.server.admin_port(), "/readyz");
    if (not_ready.find("503") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_NE(not_ready.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos)
      << not_ready;
  EXPECT_NE(Body(not_ready).find("queue_high_watermark"), std::string::npos)
      << not_ready;
}

TEST(AdminPlaneTest, StatuszIsParseableJsonWithBuildAndConfig) {
  AdminFixture fixture;
  const std::string response =
      HttpGet(fixture.server.admin_port(), "/statusz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos);
  StatusOr<JsonValue> parsed = JsonValue::Parse(Body(response));
  ASSERT_TRUE(parsed.ok()) << Body(response);
  const JsonValue* build = parsed->Find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_TRUE(build->Find("version")->is_string());
  EXPECT_TRUE(parsed->Find("ready")->as_bool());
  const JsonValue* config = parsed->Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->Find("admin_port")->as_int(),
            fixture.server.admin_port());
  EXPECT_GE(parsed->Find("uptime_s")->as_int(), 0);
}

TEST(AdminPlaneTest, FlightzServesRecentAndPinnedRecords) {
  HandlerOptions handler_options;
  handler_options.flight_slow_us = 1;  // pin essentially every request
  AdminFixture fixture{handler_options};
  {
    auto client = ServeClient::Connect("127.0.0.1", fixture.server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(
        client->SendLine(R"({"op":"load","graph":"g","source":"karate"})")
            .ok());
    ASSERT_TRUE(client->ReadLine().ok());
    ASSERT_TRUE(client
                    ->SendLine(
                        R"({"op":"solve","graph":"g","algorithm":"forest",)"
                        R"("k":3,"seed":4,"trace_id":"admin-test-trace"})")
                    .ok());
    ASSERT_TRUE(client->ReadLine().ok());
  }
  const std::string response =
      HttpGet(fixture.server.admin_port(), "/flightz?n=8");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  StatusOr<JsonValue> parsed = JsonValue::Parse(Body(response));
  ASSERT_TRUE(parsed.ok()) << Body(response);
  EXPECT_GE(parsed->Find("committed")->as_int(), 2);
  bool saw_trace = false;
  for (const JsonValue& record : parsed->Find("records")->array()) {
    const JsonValue* trace_id = record.Find("trace_id");
    if (trace_id != nullptr && trace_id->is_string() &&
        trace_id->as_string() == "admin-test-trace") {
      saw_trace = true;
      EXPECT_EQ(record.Find("graph")->as_string(), "g");
    }
  }
  EXPECT_TRUE(saw_trace) << Body(response);
  // The solve took >= 1us, so the pinned (slow) ring caught it too.
  EXPECT_FALSE(parsed->Find("pinned")->array().empty()) << Body(response);
}

TEST(AdminPlaneTest, UnknownPathAndNonGetAreRejected) {
  AdminFixture fixture;
  const std::string missing =
      HttpGet(fixture.server.admin_port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos)
      << missing;
  const std::string post = HttpRequest(
      fixture.server.admin_port(),
      "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos)
      << post;
}

TEST(AdminPlaneTest, AdminPortDisabledByDefault) {
  ServeHandler handler{{}};
  Server server{&handler, ServerOptions{.port = 0}};
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.admin_port(), -1);
  server.Shutdown();
}

}  // namespace
}  // namespace cfcm::serve
