#include "serve/json.h"

#include <string>

#include <gtest/gtest.h>

namespace cfcm::serve {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_EQ(JsonValue::Parse("true")->as_bool(), true);
  EXPECT_EQ(JsonValue::Parse("false")->as_bool(), false);
  EXPECT_EQ(JsonValue::Parse("42")->as_int(), 42);
  EXPECT_EQ(JsonValue::Parse("-7")->as_int(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("0.25")->as_double(), 0.25);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonTest, IntegersKeepInt64Exactness) {
  // 2^62 + 1 is not representable as a double.
  const int64_t big = (int64_t{1} << 62) + 1;
  StatusOr<JsonValue> parsed = JsonValue::Parse(std::to_string(big));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_int());
  EXPECT_EQ(parsed->as_int(), big);
  EXPECT_EQ(parsed->Serialize(), std::to_string(big));
}

TEST(JsonTest, ParsesNestedStructures) {
  StatusOr<JsonValue> parsed = JsonValue::Parse(
      R"({"op":"solve","k":3,"group":[1,2,3],"opts":{"eps":0.2}})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("op")->as_string(), "solve");
  EXPECT_EQ(parsed->Find("k")->as_int(), 3);
  ASSERT_TRUE(parsed->Find("group")->is_array());
  EXPECT_EQ(parsed->Find("group")->array().size(), 3u);
  EXPECT_EQ(parsed->Find("group")->array()[1].as_int(), 2);
  EXPECT_DOUBLE_EQ(parsed->Find("opts")->Find("eps")->as_double(), 0.2);
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

TEST(JsonTest, SerializeIsDeterministicAndSorted) {
  JsonValue::Object object;
  object["zebra"] = 1;
  object["alpha"] = true;
  object["mid"] = JsonValue(JsonValue::Array{1, "two", nullptr});
  const JsonValue value{object};
  EXPECT_EQ(value.Serialize(),
            R"({"alpha":true,"mid":[1,"two",null],"zebra":1})");
  EXPECT_EQ(value.Serialize(), value.Serialize());
}

TEST(JsonTest, RoundTripsThroughParse) {
  const std::string text =
      R"({"a":[1,2.5,true,null,"x"],"b":{"c":"line\nbreak","d":-3}})";
  StatusOr<JsonValue> parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok());
  StatusOr<JsonValue> reparsed = JsonValue::Parse(parsed->Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(parsed->Serialize(), reparsed->Serialize());
}

TEST(JsonTest, StringEscapes) {
  StatusOr<JsonValue> parsed =
      JsonValue::Parse(R"("quote\" back\\ slash\/ tab\t nl\n uA")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), "quote\" back\\ slash/ tab\t nl\n uA");
  // Escaping must round-trip control characters and quotes.
  const JsonValue value{std::string("a\"b\\c\nd\x01")};
  StatusOr<JsonValue> back = JsonValue::Parse(value.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->as_string(), value.as_string());
}

TEST(JsonTest, SurrogatePairsDecodeToUtf8) {
  StatusOr<JsonValue> parsed = JsonValue::Parse(R"("😀")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), "\xF0\x9F\x98\x80");  // U+1F600
  EXPECT_FALSE(JsonValue::Parse(R"("\ud83d")").ok());    // lone high
  EXPECT_FALSE(JsonValue::Parse(R"("\ude00")").ok());    // lone low
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "1.2.3", "\"unterm",
        "{\"a\":1} trailing", "[1] 2", "nan", "{'a':1}", "\"bad\\escape\"",
        "\x01"}) {
    StatusOr<JsonValue> parsed = JsonValue::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << "input: " << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(JsonTest, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  // 64 levels is within the documented limit.
  std::string ok_depth(32, '[');
  ok_depth += std::string(32, ']');
  EXPECT_TRUE(JsonValue::Parse(ok_depth).ok());
}

TEST(JsonTest, DoubleSerializationRoundTripsExactly) {
  for (double d : {0.2, 1.0 / 3.0, 2.6130066034611583, 1e-17, -0.0, 123.456}) {
    const std::string text = JsonValue(d).Serialize();
    StatusOr<JsonValue> back = JsonValue::Parse(text);
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_EQ(back->as_double(), d) << text;
  }
}

}  // namespace
}  // namespace cfcm::serve
