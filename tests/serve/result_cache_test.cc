#include "serve/result_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cfcm::serve {
namespace {

engine::SolveJobResult MakeResult(int tag) {
  engine::SolveJobResult result;
  result.algorithm = "forest";
  result.output.selected = {tag, tag + 1};
  result.cfcc = 1.0 + tag;
  return result;
}

ResultCacheKey MakeKey(uint64_t seed) {
  return ResultCacheKey{0xabcdef, "forest", 3, 0.2, seed};
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(8, 2);
  EXPECT_FALSE(cache.Lookup(MakeKey(1)).has_value());
  cache.Insert(MakeKey(1), MakeResult(7));
  auto hit = cache.Lookup(MakeKey(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->output.selected, (std::vector<NodeId>{7, 8}));
  EXPECT_EQ(hit->cfcc, 8.0);

  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, EveryKeyComponentDiscriminates) {
  ResultCache cache(64, 4);
  const ResultCacheKey base{1, "forest", 3, 0.2, 5};
  cache.Insert(base, MakeResult(0));
  ResultCacheKey other = base;
  other.fingerprint = 2;
  EXPECT_FALSE(cache.Lookup(other).has_value());
  other = base;
  other.algorithm = "schur";
  EXPECT_FALSE(cache.Lookup(other).has_value());
  other = base;
  other.k = 4;
  EXPECT_FALSE(cache.Lookup(other).has_value());
  other = base;
  other.eps = 0.3;
  EXPECT_FALSE(cache.Lookup(other).has_value());
  other = base;
  other.seed = 6;
  EXPECT_FALSE(cache.Lookup(other).has_value());
  EXPECT_TRUE(cache.Lookup(base).has_value());
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedPerShard) {
  // One shard makes LRU order observable.
  ResultCache cache(3, 1);
  cache.Insert(MakeKey(1), MakeResult(1));
  cache.Insert(MakeKey(2), MakeResult(2));
  cache.Insert(MakeKey(3), MakeResult(3));
  // Touch 1 so 2 becomes LRU.
  EXPECT_TRUE(cache.Lookup(MakeKey(1)).has_value());
  cache.Insert(MakeKey(4), MakeResult(4));
  EXPECT_FALSE(cache.Lookup(MakeKey(2)).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(1)).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(3)).has_value());
  EXPECT_TRUE(cache.Lookup(MakeKey(4)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2, 1);
  cache.Insert(MakeKey(1), MakeResult(1));
  cache.Insert(MakeKey(1), MakeResult(9));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.Lookup(MakeKey(1))->cfcc, 10.0);
}

TEST(ResultCacheTest, ClearDropsEntriesKeepsCounters) {
  ResultCache cache(8, 2);
  EXPECT_FALSE(cache.Lookup(MakeKey(1)).has_value());  // pre-insert miss
  cache.Insert(MakeKey(1), MakeResult(1));
  EXPECT_TRUE(cache.Lookup(MakeKey(1)).has_value());
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.Lookup(MakeKey(1)).has_value());  // post-clear miss
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ResultCacheTest, CapacityIsSplitAcrossShards) {
  ResultCache cache(16, 4);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.shards, 4);
  EXPECT_EQ(stats.capacity, 16u);
}

TEST(ResultCacheTest, ConcurrentMixedTrafficIsSafe) {
  ResultCache cache(64, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const uint64_t seed = static_cast<uint64_t>((t * 97 + i) % 100);
        if (i % 3 == 0) cache.Insert(MakeKey(seed), MakeResult(t));
        else cache.Lookup(MakeKey(seed));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Per thread: 167 inserts (i % 3 == 0) and 333 lookups.
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4u * 333u);
  EXPECT_LE(stats.entries, 64u);
}

}  // namespace
}  // namespace cfcm::serve
