#include "estimators/bernstein.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "estimators/options.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

TEST(BernsteinTest, ZeroVarianceLeavesOnlySupTerm) {
  // 100 identical samples of value 5: variance term vanishes.
  const double h = EmpiricalBernsteinHalfWidth(100, 500.0, 2500.0, 5.0, 0.1);
  EXPECT_NEAR(h, 3.0 * 5.0 * std::log(30.0) / 100.0, 1e-12);
}

TEST(BernsteinTest, ShrinksWithSampleCount) {
  // Bernoulli-ish moments: mean .5, second moment .5.
  const double h1 = EmpiricalBernsteinHalfWidth(100, 50, 50, 1.0, 0.05);
  const double h2 = EmpiricalBernsteinHalfWidth(10000, 5000, 5000, 1.0, 0.05);
  EXPECT_LT(h2, h1);
  EXPECT_NEAR(h1 / h2, std::sqrt(100.0), 30);  // ~ 1/sqrt(r) scaling
}

TEST(BernsteinTest, GrowsAsDeltaShrinks) {
  const double loose = EmpiricalBernsteinHalfWidth(100, 50, 50, 1.0, 0.5);
  const double tight = EmpiricalBernsteinHalfWidth(100, 50, 50, 1.0, 1e-6);
  EXPECT_LT(loose, tight);
}

TEST(BernsteinTest, InfiniteOnZeroSamples) {
  EXPECT_TRUE(std::isinf(EmpiricalBernsteinHalfWidth(0, 0, 0, 1.0, 0.1)));
  EXPECT_TRUE(std::isinf(VarianceHalfWidth(0, 0, 0, 0.1)));
}

TEST(BernsteinTest, CoversTrueMeanEmpirically) {
  // Draw batches of uniform[0,1] samples; the half-width at delta=0.05
  // must cover the true mean 0.5 in ~95%+ of repetitions.
  Rng rng(123);
  int covered = 0;
  constexpr int kReps = 300;
  constexpr int kPerRep = 200;
  for (int rep = 0; rep < kReps; ++rep) {
    double sum = 0, sum_sq = 0;
    for (int i = 0; i < kPerRep; ++i) {
      const double x = rng.NextDouble();
      sum += x;
      sum_sq += x * x;
    }
    const double h =
        EmpiricalBernsteinHalfWidth(kPerRep, sum, sum_sq, 1.0, 0.05);
    if (std::fabs(sum / kPerRep - 0.5) <= h) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(0.95 * kReps));
}

TEST(BernsteinTest, VarianceHalfWidthIsSmallerThanFull) {
  const double full = EmpiricalBernsteinHalfWidth(50, 25, 20, 3.0, 0.1);
  const double var_only = VarianceHalfWidth(50, 25, 20, 0.1);
  EXPECT_LT(var_only, full);
}

TEST(HoeffdingTest, SampleBoundMatchesFormula) {
  // r >= range^2 log(2/delta) / (2 eps^2).
  EXPECT_NEAR(HoeffdingSampleBound(2.0, 0.1, 0.05),
              4.0 * std::log(40.0) / 0.02, 1e-9);
  EXPECT_GT(HoeffdingSampleBound(2.0, 0.05, 0.05),
            HoeffdingSampleBound(2.0, 0.1, 0.05));
}

TEST(EstimatorOptionsTest, JlRowsClampedAndOverridable) {
  EstimatorOptions opts;
  const int auto_rows = ResolveJlRows(opts, 1000);
  EXPECT_GE(auto_rows, 8);
  EXPECT_LE(auto_rows, opts.max_jl_rows);
  opts.jl_rows = 5;
  EXPECT_EQ(ResolveJlRows(opts, 1000), 5);
}

TEST(EstimatorOptionsTest, TargetForestsScalesWithEps) {
  EstimatorOptions tight, loose;
  tight.eps = 0.15;
  loose.eps = 0.3;
  tight.max_forests = loose.max_forests = 1 << 20;
  const int r_tight = ResolveTargetForests(tight, 10000);
  const int r_loose = ResolveTargetForests(loose, 10000);
  // eps^{-2} scaling: (0.3/0.15)^2 = 4x.
  EXPECT_NEAR(static_cast<double>(r_tight) / r_loose, 4.0, 0.2);
}

TEST(EstimatorOptionsTest, TargetForestsRespectsCap) {
  EstimatorOptions opts;
  opts.eps = 0.01;
  opts.max_forests = 100;
  EXPECT_EQ(ResolveTargetForests(opts, 1 << 20), 100);
}

TEST(EstimatorOptionsTest, DeltaDefaultsToOneOverN) {
  EstimatorOptions opts;
  EXPECT_DOUBLE_EQ(ResolveBernsteinDelta(opts, 500), 1.0 / 500);
  opts.bernstein_delta = 0.01;
  EXPECT_DOUBLE_EQ(ResolveBernsteinDelta(opts, 500), 0.01);
}

}  // namespace
}  // namespace cfcm
