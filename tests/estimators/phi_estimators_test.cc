#include "estimators/phi_estimators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "forest/subtree.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace cfcm {
namespace {

// Empirical mean of the per-forest estimators over many sampled forests,
// compared against the exact L_{-S}^{-1}. These are the unbiasedness
// tests for the identities in DESIGN.md §3 (Lemmas 3.2/3.3).
class PhiEstimatorsTest : public ::testing::Test {
 protected:
  struct Averages {
    std::vector<double> diag;       // mean X_f(u)
    std::vector<double> ones;       // mean O_f(u)
    std::vector<double> jl;         // mean Y_f(u) for each (u, j)
    int w = 0;
  };

  Averages Run(const Graph& g, const std::vector<NodeId>& s_nodes,
               int samples, int w, uint64_t seed) {
    const TreeScaffold scaffold = MakeTreeScaffold(g, s_nodes);
    const JlSketch sketch(w, g.num_nodes(), seed ^ 0xabcdULL);
    ForestSampler sampler(g);
    const std::size_t n = static_cast<std::size_t>(g.num_nodes());

    Averages avg;
    avg.w = w;
    avg.diag.assign(n, 0.0);
    avg.ones.assign(n, 0.0);
    avg.jl.assign(n * w, 0.0);

    std::vector<double> xbuf(n);
    std::vector<double> obuf(n);
    std::vector<int32_t> sizes;
    std::vector<double> sub(n * w), ybuf(n * w);
    Rng rng(seed);
    for (int i = 0; i < samples; ++i) {
      const RootedForest& f = sampler.Sample(scaffold.is_root, &rng);
      DiagPrefixPass(scaffold, f, &xbuf);
      SubtreeSizes(f, &sizes);
      OnesPrefixPass(scaffold, f, sizes, &obuf);
      SubtreeJlSums(f, scaffold.is_root, sketch, sub.data());
      JlPrefixPass(scaffold, f, sub.data(), w, ybuf.data());
      for (std::size_t u = 0; u < n; ++u) {
        avg.diag[u] += xbuf[u];
        avg.ones[u] += obuf[u];
        for (int j = 0; j < w; ++j) avg.jl[u * w + j] += ybuf[u * w + j];
      }
    }
    for (std::size_t u = 0; u < n; ++u) {
      avg.diag[u] /= samples;
      avg.ones[u] /= samples;
      for (int j = 0; j < w; ++j) avg.jl[u * w + j] /= samples;
    }
    // Keep the sketch for the comparison step.
    sketch_entries_.assign(n * w, 0.0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (scaffold.is_root[v]) continue;
      for (int j = 0; j < w; ++j) {
        sketch_entries_[static_cast<std::size_t>(v) * w + j] =
            sketch.Entry(j, v);
      }
    }
    return avg;
  }

  std::vector<double> sketch_entries_;  // W with zeros at roots
};

TEST_F(PhiEstimatorsTest, DiagUnbiasedOnKarateSingleRoot) {
  const Graph g = KarateClub();
  const std::vector<NodeId> s = {33};
  const Averages avg = Run(g, s, 20000, 4, 1);
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, s);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), s);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 33) {
      EXPECT_EQ(avg.diag[u], 0.0);
      continue;
    }
    const double exact = inv(idx.pos[u], idx.pos[u]);
    EXPECT_NEAR(avg.diag[u], exact, 0.05 + 0.05 * exact) << "u=" << u;
  }
}

TEST_F(PhiEstimatorsTest, DiagUnbiasedOnGridMultiRoot) {
  const Graph g = GridGraph(5, 5);
  const std::vector<NodeId> s = {0, 24};
  const Averages avg = Run(g, s, 20000, 4, 2);
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, s);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), s);
  for (NodeId u : {1, 6, 12, 18, 23}) {
    const double exact = inv(idx.pos[u], idx.pos[u]);
    EXPECT_NEAR(avg.diag[u], exact, 0.06 + 0.05 * exact) << "u=" << u;
  }
}

TEST_F(PhiEstimatorsTest, OnesUnbiased) {
  // E[O_f(u)] = 1^T L_{-S}^{-1} e_u.
  const Graph g = KarateClub();
  const std::vector<NodeId> s = {0};
  const Averages avg = Run(g, s, 20000, 4, 3);
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, s);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), s);
  for (NodeId u : {1, 5, 16, 33}) {
    double exact = 0;
    for (int i = 0; i < inv.rows(); ++i) exact += inv(i, idx.pos[u]);
    EXPECT_NEAR(avg.ones[u], exact, 0.05 * exact + 0.3) << "u=" << u;
  }
}

TEST_F(PhiEstimatorsTest, JlUnbiased) {
  // E[Y_{j,f}(u)] = (W L_{-S}^{-1})_{ju}.
  const Graph g = ContiguousUsa();
  const std::vector<NodeId> s = {12};
  const int w = 6;
  const Averages avg = Run(g, s, 30000, w, 4);
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, s);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), s);
  const NodeId n = g.num_nodes();
  for (NodeId u : {0, 7, 30, 48}) {
    if (u == 12) continue;
    for (int j = 0; j < w; ++j) {
      double exact = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (v == 12) continue;
        exact += sketch_entries_[static_cast<std::size_t>(v) * w + j] *
                 inv(idx.pos[v], idx.pos[u]);
      }
      EXPECT_NEAR(avg.jl[static_cast<std::size_t>(u) * w + j], exact,
                  0.25 + 0.1 * std::fabs(exact))
          << "u=" << u << " j=" << j;
    }
  }
}

TEST_F(PhiEstimatorsTest, RootsAlwaysZero) {
  const Graph g = BarabasiAlbert(50, 2, 5);
  const std::vector<NodeId> s = {0, 10, 20};
  const Averages avg = Run(g, s, 100, 4, 5);
  for (NodeId r : s) {
    EXPECT_EQ(avg.diag[r], 0.0);
    EXPECT_EQ(avg.ones[r], 0.0);
    for (int j = 0; j < avg.w; ++j) {
      EXPECT_EQ(avg.jl[static_cast<std::size_t>(r) * avg.w + j], 0.0);
    }
  }
}

TEST(PhiEdgeIdentityTest, EdgeOrientationIdentityHoldsExactly) {
  // Pr[pi_a = b] - Pr[pi_b = a] = (L^{-1})_aa - (L^{-1})_bb, validated on
  // the triangle by exhaustive enumeration of its 3 spanning trees
  // rooted at node 2: Pr[pi_0 = 2] = 2/3, Pr[pi_0 = 1] = 1/3, etc.
  const Graph g = CompleteGraph(3);
  ForestSampler sampler(g);
  Rng rng(42);
  std::vector<char> roots = {0, 0, 1};
  int n01 = 0, n10 = 0, n02 = 0;
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) {
    const RootedForest& f = sampler.Sample(roots, &rng);
    n01 += f.parent[0] == 1;
    n10 += f.parent[1] == 0;
    n02 += f.parent[0] == 2;
  }
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, {2});
  const double lhs_01 = static_cast<double>(n01 - n10) / kSamples;
  EXPECT_NEAR(lhs_01, inv(0, 0) - inv(1, 1), 0.02);  // = 0 by symmetry
  const double lhs_02 = static_cast<double>(n02) / kSamples;
  EXPECT_NEAR(lhs_02, inv(0, 0), 0.02);  // = 2/3
}


TEST_F(PhiEstimatorsTest, DiagUnbiasedOnWeightedKarate) {
  const Graph g = KarateClubWeighted();
  const std::vector<NodeId> s = {33};
  const Averages avg = Run(g, s, 30000, 4, 6);
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, s);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), s);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 33) {
      EXPECT_EQ(avg.diag[u], 0.0);
      continue;
    }
    const double exact = inv(idx.pos[u], idx.pos[u]);
    EXPECT_NEAR(avg.diag[u], exact, 0.08 + 0.08 * exact) << "u=" << u;
  }
}

TEST_F(PhiEstimatorsTest, OnesUnbiasedOnWeightedGraph) {
  const Graph g =
      AssignUniformWeights(GridGraph(5, 5), 0.5, 2.0, /*seed=*/17);
  const std::vector<NodeId> s = {0};
  const Averages avg = Run(g, s, 30000, 4, 7);
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, s);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), s);
  for (NodeId u : {1, 6, 12, 24}) {
    double exact = 0;
    for (int i = 0; i < inv.rows(); ++i) exact += inv(i, idx.pos[u]);
    EXPECT_NEAR(avg.ones[u], exact, 0.08 * exact + 0.5) << "u=" << u;
  }
}

TEST_F(PhiEstimatorsTest, JlUnbiasedOnWeightedGraph) {
  const Graph g = KarateClubWeighted();
  const std::vector<NodeId> s = {0};
  const int w = 6;
  const Averages avg = Run(g, s, 30000, w, 8);
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, s);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), s);
  const NodeId n = g.num_nodes();
  for (NodeId u : {5, 16, 33}) {
    for (int j = 0; j < w; ++j) {
      double exact = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (v == 0) continue;
        exact += sketch_entries_[static_cast<std::size_t>(v) * w + j] *
                 inv(idx.pos[v], idx.pos[u]);
      }
      EXPECT_NEAR(avg.jl[static_cast<std::size_t>(u) * w + j], exact,
                  0.3 + 0.12 * std::fabs(exact))
          << "u=" << u << " j=" << j;
    }
  }
}

TEST(PhiEdgeIdentityTest, WeightedEdgeOrientationIdentity) {
  // Weighted form of the orientation identity: Pr[pi_a = b] - Pr[pi_b =
  // a] = w_ab ((L^{-1})_aa - (L^{-1})_bb), checked on a weighted
  // triangle rooted at node 2.
  const Graph g =
      BuildWeightedGraph(3, {{0, 1, 2.0}, {1, 2, 0.5}, {0, 2, 4.0}});
  ForestSampler sampler(g);
  Rng rng(99);
  std::vector<char> roots = {0, 0, 1};
  int n01 = 0, n10 = 0;
  constexpr int kSamples = 120000;
  for (int i = 0; i < kSamples; ++i) {
    const RootedForest& f = sampler.Sample(roots, &rng);
    n01 += f.parent[0] == 1;
    n10 += f.parent[1] == 0;
  }
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, {2});
  const double lhs = static_cast<double>(n01 - n10) / kSamples;
  EXPECT_NEAR(lhs, 2.0 * (inv(0, 0) - inv(1, 1)), 0.02);
}

}  // namespace
}  // namespace cfcm
