#include "estimators/schur_delta.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace cfcm {
namespace {

EstimatorOptions TestOptions(int forests, int jl_rows = 0) {
  EstimatorOptions opts;
  opts.seed = 31;
  opts.max_forests = forests;
  opts.target_forests = forests;
  opts.jl_rows = jl_rows;
  opts.adaptive = false;
  return opts;
}

std::vector<double> ExactDelta(const Graph& g,
                               const std::vector<NodeId>& s_nodes) {
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, s_nodes);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), s_nodes);
  std::vector<double> delta(static_cast<std::size_t>(g.num_nodes()), 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId i = idx.pos[u];
    if (i < 0) continue;
    double nrm = 0;
    for (int j = 0; j < inv.rows(); ++j) nrm += inv(j, i) * inv(j, i);
    delta[u] = nrm / inv(i, i);
  }
  return delta;
}

TEST(SchurDeltaTest, ZMatchesDiagonalIncludingTNodes) {
  // z_u must estimate (L_{-S}^{-1})_uu for u in U *and* u in T — the T
  // entries come purely from the estimated Schur complement (Eq. 11).
  const Graph g = KarateClub();
  const std::vector<NodeId> s = {5};
  const std::vector<NodeId> t = {33, 0};
  ThreadPool pool(2);
  const SchurDeltaEstimate est =
      SchurDelta(g, s, t, TestOptions(8192, 16), pool);
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, s);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), s);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 5) continue;
    const double exact = inv(idx.pos[u], idx.pos[u]);
    EXPECT_NEAR(est.z[u], exact, 0.05 + 0.08 * exact) << "u=" << u;
  }
  EXPECT_EQ(est.auxiliary_roots, 2);
}

TEST(SchurDeltaTest, DeltaCloseToExact) {
  const Graph g = ContiguousUsa();
  const std::vector<NodeId> s = {10};
  const std::vector<NodeId> t = {20, 35};
  ThreadPool pool(2);
  const SchurDeltaEstimate est =
      SchurDelta(g, s, t, TestOptions(8192, 64), pool);
  const std::vector<double> exact = ExactDelta(g, s);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 10) continue;
    EXPECT_NEAR(est.delta[u], exact[u], 0.25 * exact[u] + 0.1) << "u=" << u;
  }
}

TEST(SchurDeltaTest, ArgmaxMatchesExact) {
  const Graph g = KarateClub();
  const std::vector<NodeId> s = {33};
  const std::vector<NodeId> t = {0, 32};
  ThreadPool pool(2);
  const SchurDeltaEstimate est =
      SchurDelta(g, s, t, TestOptions(8192, 32), pool);
  const std::vector<double> exact = ExactDelta(g, s);

  NodeId est_best = -1, exact_best = -1;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 33) continue;
    if (est_best < 0 || est.delta[u] > est.delta[est_best]) est_best = u;
    if (exact_best < 0 || exact[u] > exact[exact_best]) exact_best = u;
  }
  EXPECT_GE(exact[est_best], 0.95 * exact[exact_best]);
}

TEST(SchurDeltaTest, AgreesWithForestDeltaEstimates) {
  // Two different estimators of the same quantity must agree.
  const Graph g = BarabasiAlbert(80, 2, 41);
  const std::vector<NodeId> s = {3};
  const std::vector<NodeId> t = {0, 1};
  ThreadPool pool(2);
  const SchurDeltaEstimate schur =
      SchurDelta(g, s, t, TestOptions(4096, 32), pool);
  const std::vector<double> exact = ExactDelta(g, s);
  double max_rel = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 3 || exact[u] < 0.2) continue;
    max_rel = std::max(max_rel,
                       std::fabs(schur.delta[u] - exact[u]) / exact[u]);
  }
  EXPECT_LT(max_rel, 0.35);
}

TEST(SchurDeltaTest, SNodesGetZero) {
  const Graph g = KarateClub();
  ThreadPool pool(1);
  const SchurDeltaEstimate est =
      SchurDelta(g, {7, 11}, {33}, TestOptions(64, 8), pool);
  EXPECT_EQ(est.delta[7], 0.0);
  EXPECT_EQ(est.delta[11], 0.0);
}

TEST(SchurDeltaTest, DeterministicAcrossThreadCounts) {
  // Same forests regardless of worker count; summation order may differ,
  // so compare to rounding error.
  const Graph g = ContiguousUsa();
  ThreadPool pool1(1), pool3(3);
  const SchurDeltaEstimate a =
      SchurDelta(g, {4}, {20, 35}, TestOptions(128, 8), pool1);
  const SchurDeltaEstimate b =
      SchurDelta(g, {4}, {20, 35}, TestOptions(128, 8), pool3);
  for (std::size_t u = 0; u < a.delta.size(); ++u) {
    EXPECT_NEAR(a.delta[u], b.delta[u], 1e-9 * (1.0 + a.delta[u]));
    EXPECT_NEAR(a.z[u], b.z[u], 1e-9 * (1.0 + a.z[u]));
  }
}

TEST(SchurDeltaTest, NoRidgeNeededAtReasonableSampleCounts) {
  const Graph g = KarateClub();
  ThreadPool pool(2);
  const SchurDeltaEstimate est =
      SchurDelta(g, {5}, {33, 0}, TestOptions(1024, 8), pool);
  EXPECT_EQ(est.ridge, 0.0);
}

}  // namespace
}  // namespace cfcm
