#include "estimators/first_pick.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace cfcm {
namespace {

EstimatorOptions TestOptions(int max_forests = 4096) {
  EstimatorOptions opts;
  opts.seed = 11;
  opts.max_forests = max_forests;
  opts.target_forests = max_forests;
  opts.adaptive = false;
  return opts;
}

TEST(FirstPickTest, FindsArgminOfPseudoinverseDiagonalOnKarate) {
  const Graph g = KarateClub();
  ThreadPool pool(2);
  const FirstPickResult result = EstimateFirstPick(g, TestOptions(), pool);
  const DenseMatrix pinv = LaplacianPseudoinverse(g);
  NodeId exact_best = 0;
  for (NodeId u = 1; u < g.num_nodes(); ++u) {
    if (pinv(u, u) < pinv(exact_best, exact_best)) exact_best = u;
  }
  EXPECT_EQ(result.best, exact_best);
  EXPECT_EQ(result.pivot, 33);  // max degree node
}

TEST(FirstPickTest, ScoresMatchShiftedDiagonal) {
  // scores[u] should estimate L†_uu - L†_ss (Lemma 3.5).
  const Graph g = ContiguousUsa();
  ThreadPool pool(2);
  const FirstPickResult result = EstimateFirstPick(g, TestOptions(8192), pool);
  const DenseMatrix pinv = LaplacianPseudoinverse(g);
  const NodeId s = result.pivot;
  for (NodeId u = 0; u < g.num_nodes(); u += 5) {
    const double exact = pinv(u, u) - pinv(s, s);
    EXPECT_NEAR(result.scores[u], exact, 0.08 + 0.1 * std::abs(exact))
        << "u=" << u;
  }
}

TEST(FirstPickTest, StarGraphPicksHub) {
  const Graph g = StarGraph(20);
  ThreadPool pool(1);
  const FirstPickResult result = EstimateFirstPick(g, TestOptions(256), pool);
  EXPECT_EQ(result.best, 0);
}

TEST(FirstPickTest, PathGraphPicksCenter) {
  const Graph g = PathGraph(15);
  ThreadPool pool(2);
  const FirstPickResult result = EstimateFirstPick(g, TestOptions(8192), pool);
  // Center of a 15-path is node 7; allow one off due to near-ties.
  EXPECT_NEAR(result.best, 7, 1);
}

TEST(FirstPickTest, DeterministicInSeed) {
  const Graph g = KarateClub();
  ThreadPool pool(2);
  const FirstPickResult a = EstimateFirstPick(g, TestOptions(512), pool);
  const FirstPickResult b = EstimateFirstPick(g, TestOptions(512), pool);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.scores, b.scores);
}

TEST(FirstPickTest, DeterministicAcrossThreadCounts) {
  // Forest i is seeded by (seed, i), so the sampled forests are
  // identical regardless of worker count; only the floating-point
  // summation order differs. Scores must agree to rounding error.
  const Graph g = ContiguousUsa();
  ThreadPool pool1(1), pool4(4);
  const FirstPickResult a = EstimateFirstPick(g, TestOptions(256), pool1);
  const FirstPickResult b = EstimateFirstPick(g, TestOptions(256), pool4);
  EXPECT_EQ(a.best, b.best);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t u = 0; u < a.scores.size(); ++u) {
    EXPECT_NEAR(a.scores[u], b.scores[u], 1e-9 * (1.0 + std::abs(a.scores[u])));
  }
}

TEST(FirstPickTest, AdaptiveStopsEarlyOnEasyInstance) {
  // On a star the hub is overwhelmingly better; the selection-resolved
  // criterion should fire long before the cap.
  const Graph g = StarGraph(50);
  EstimatorOptions opts;
  opts.seed = 3;
  opts.min_batch = 32;
  opts.max_forests = 1 << 14;
  opts.target_forests = 1 << 14;
  opts.adaptive = true;
  ThreadPool pool(2);
  const FirstPickResult result = EstimateFirstPick(g, opts, pool);
  EXPECT_EQ(result.best, 0);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.forests, 1 << 14);
}

}  // namespace
}  // namespace cfcm
