#include "estimators/forest_delta.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace cfcm {
namespace {

EstimatorOptions TestOptions(int forests, int jl_rows = 0) {
  EstimatorOptions opts;
  opts.seed = 21;
  opts.max_forests = forests;
  opts.target_forests = forests;
  opts.jl_rows = jl_rows;
  opts.adaptive = false;
  return opts;
}

// Exact Delta(u,S) = (L^{-2})_uu / (L^{-1})_uu from the dense inverse.
std::vector<double> ExactDelta(const Graph& g,
                               const std::vector<NodeId>& s_nodes) {
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, s_nodes);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), s_nodes);
  std::vector<double> delta(static_cast<std::size_t>(g.num_nodes()), 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId i = idx.pos[u];
    if (i < 0) continue;
    double nrm = 0;
    for (int j = 0; j < inv.rows(); ++j) nrm += inv(j, i) * inv(j, i);
    delta[u] = nrm / inv(i, i);
  }
  return delta;
}

TEST(ForestDeltaTest, ZEstimatesDiagonal) {
  const Graph g = KarateClub();
  const std::vector<NodeId> s = {33};
  ThreadPool pool(2);
  const DeltaEstimate est = ForestDelta(g, s, TestOptions(8192, 16), pool);
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, s);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), s);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 33) continue;
    const double exact = inv(idx.pos[u], idx.pos[u]);
    EXPECT_NEAR(est.z[u], exact, 0.05 + 0.06 * exact) << "u=" << u;
  }
}

TEST(ForestDeltaTest, DeltaWithinJlDistortionOfExact) {
  const Graph g = KarateClub();
  const std::vector<NodeId> s = {33, 0};
  ThreadPool pool(2);
  // Large w and many forests: the remaining error is JL distortion plus
  // sampling noise; 20% tolerance is comfortably above both.
  const DeltaEstimate est = ForestDelta(g, s, TestOptions(8192, 64), pool);
  const std::vector<double> exact = ExactDelta(g, s);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 33 || u == 0) continue;
    EXPECT_NEAR(est.delta[u], exact[u], 0.2 * exact[u] + 0.05) << "u=" << u;
  }
}

TEST(ForestDeltaTest, ArgmaxMatchesExactArgmax) {
  // Selecting the best node is what the greedy loop needs. Cont. USA has
  // diameter ~11 (the hard regime), so use a wide sketch: JL distortion
  // scales like 1/sqrt(w).
  const Graph g = ContiguousUsa();
  const std::vector<NodeId> s = {20};
  ThreadPool pool(2);
  const DeltaEstimate est = ForestDelta(g, s, TestOptions(8192, 160), pool);
  const std::vector<double> exact = ExactDelta(g, s);

  NodeId est_best = -1, exact_best = -1;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 20) continue;
    if (est_best < 0 || est.delta[u] > est.delta[est_best]) est_best = u;
    if (exact_best < 0 || exact[u] > exact[exact_best]) exact_best = u;
  }
  // The estimated argmax must be within 10% of the true best gain (ties
  // between near-equal nodes are acceptable selections; Cont. USA has
  // diameter ~11, the hard regime for flow estimators).
  EXPECT_GE(exact[est_best], 0.90 * exact[exact_best]);
}

TEST(ForestDeltaTest, RootsGetZero) {
  const Graph g = KarateClub();
  const std::vector<NodeId> s = {5, 10};
  ThreadPool pool(1);
  const DeltaEstimate est = ForestDelta(g, s, TestOptions(64, 8), pool);
  for (NodeId r : s) {
    EXPECT_EQ(est.delta[r], 0.0);
    EXPECT_EQ(est.z[r], 0.0);
  }
}

TEST(ForestDeltaTest, DeterministicAcrossThreadCounts) {
  // Same forests regardless of worker count; summation order may differ,
  // so compare to rounding error.
  const Graph g = ContiguousUsa();
  const std::vector<NodeId> s = {0};
  ThreadPool pool1(1), pool3(3);
  const DeltaEstimate a = ForestDelta(g, s, TestOptions(128, 8), pool1);
  const DeltaEstimate b = ForestDelta(g, s, TestOptions(128, 8), pool3);
  for (std::size_t u = 0; u < a.delta.size(); ++u) {
    EXPECT_NEAR(a.delta[u], b.delta[u], 1e-9 * (1.0 + a.delta[u]));
    EXPECT_NEAR(a.z[u], b.z[u], 1e-9 * (1.0 + a.z[u]));
  }
}

TEST(ForestDeltaTest, ReportsConfiguration) {
  const Graph g = KarateClub();
  ThreadPool pool(2);
  const DeltaEstimate est = ForestDelta(g, {0}, TestOptions(64, 12), pool);
  EXPECT_EQ(est.jl_rows, 12);
  EXPECT_EQ(est.forests, 64);
  EXPECT_FALSE(est.converged);  // adaptive disabled
}

TEST(ForestDeltaTest, AdaptiveModeCanStopBeforeCap) {
  const Graph g = StarGraph(64);
  EstimatorOptions opts;
  opts.seed = 5;
  opts.eps = 0.3;
  opts.min_batch = 64;
  opts.max_forests = 1 << 14;
  opts.target_forests = 1 << 14;
  opts.jl_rows = 16;
  opts.adaptive = true;
  ThreadPool pool(2);
  const DeltaEstimate est = ForestDelta(g, {0}, opts, pool);
  // On a star with the hub grounded, every leaf has (L^{-1})_uu = 1 with
  // zero variance: the Bernstein rule must fire quickly.
  EXPECT_TRUE(est.converged);
  EXPECT_LT(est.forests, 1 << 14);
}

}  // namespace
}  // namespace cfcm
