#include "forest/wilson.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "linalg/schur_exact.h"

namespace cfcm {
namespace {

std::vector<char> Mask(NodeId n, const std::vector<NodeId>& roots) {
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (NodeId r : roots) mask[r] = 1;
  return mask;
}

// Structural validity shared by all sampling tests.
void CheckForestValid(const Graph& g, const RootedForest& forest,
                      const std::vector<char>& is_root) {
  const NodeId n = g.num_nodes();
  // Roots have no parent; non-roots have a neighboring parent.
  std::size_t non_roots = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (is_root[u]) {
      EXPECT_EQ(forest.parent[u], -1);
      EXPECT_EQ(forest.root_of[u], u);
    } else {
      ++non_roots;
      ASSERT_GE(forest.parent[u], 0);
      EXPECT_TRUE(g.HasEdge(u, forest.parent[u]));
    }
  }
  // leaves_first covers each non-root exactly once, children before
  // parents.
  EXPECT_EQ(forest.leaves_first.size(), non_roots);
  std::vector<int> position(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < forest.leaves_first.size(); ++i) {
    const NodeId u = forest.leaves_first[i];
    EXPECT_EQ(position[u], -1) << "node appears twice";
    position[u] = static_cast<int>(i);
  }
  for (NodeId u : forest.leaves_first) {
    const NodeId p = forest.parent[u];
    if (!is_root[p]) {
      EXPECT_LT(position[u], position[p]) << "child must precede parent";
    }
  }
  // Every node's parent chain terminates at its recorded root.
  for (NodeId u = 0; u < n; ++u) {
    NodeId i = u;
    int steps = 0;
    while (!is_root[i]) {
      i = forest.parent[i];
      ASSERT_LE(++steps, n) << "cycle in forest";
    }
    EXPECT_EQ(forest.root_of[u], i);
  }
}

TEST(WilsonTest, ForestIsValidOnVariousGraphs) {
  Rng rng(1);
  for (const Graph& g : {KarateClub(), PathGraph(20), CycleGraph(15),
                         BarabasiAlbert(100, 2, 4), GridGraph(6, 6)}) {
    ForestSampler sampler(g);
    const auto roots = Mask(g.num_nodes(), {0});
    for (int i = 0; i < 10; ++i) {
      CheckForestValid(g, sampler.Sample(roots, &rng), roots);
    }
  }
}

TEST(WilsonTest, MultiRootForestIsValid) {
  const Graph g = KarateClub();
  ForestSampler sampler(g);
  Rng rng(2);
  const auto roots = Mask(g.num_nodes(), {0, 33, 16});
  for (int i = 0; i < 20; ++i) {
    CheckForestValid(g, sampler.Sample(roots, &rng), roots);
  }
}

TEST(WilsonTest, DeterministicGivenRngState) {
  const Graph g = KarateClub();
  ForestSampler s1(g), s2(g);
  Rng r1(99), r2(99);
  const auto roots = Mask(g.num_nodes(), {5});
  const RootedForest& f1 = s1.Sample(roots, &r1);
  const RootedForest& f2 = s2.Sample(roots, &r2);
  EXPECT_EQ(f1.parent, f2.parent);
  EXPECT_EQ(f1.leaves_first, f2.leaves_first);
}

TEST(WilsonTest, TreeGraphHasUniqueForest) {
  // On a tree rooted anywhere, the spanning forest is the tree itself.
  const Graph g = PathGraph(8);
  ForestSampler sampler(g);
  Rng rng(3);
  const auto roots = Mask(8, {0});
  const RootedForest& f = sampler.Sample(roots, &rng);
  for (NodeId u = 1; u < 8; ++u) EXPECT_EQ(f.parent[u], u - 1);
}

TEST(WilsonTest, TriangleSpanningTreesAreUniform) {
  // K3 rooted at {2} has 3 spanning trees; each must appear w.p. 1/3.
  const Graph g = CompleteGraph(3);
  ForestSampler sampler(g);
  Rng rng(7);
  const auto roots = Mask(3, {2});
  std::map<std::pair<NodeId, NodeId>, int> hist;  // (pi_0, pi_1)
  constexpr int kSamples = 30000;
  for (int i = 0; i < kSamples; ++i) {
    const RootedForest& f = sampler.Sample(roots, &rng);
    ++hist[{f.parent[0], f.parent[1]}];
  }
  ASSERT_EQ(hist.size(), 3u);
  for (const auto& [key, count] : hist) {
    EXPECT_NEAR(count, kSamples / 3.0, 5 * std::sqrt(kSamples / 3.0));
  }
}

TEST(WilsonTest, RootAbsorptionMatchesExactProbabilities) {
  // Empirical Pr(rho_u = t) must converge to F = -L_UU^{-1} L_UT
  // (Lemma 4.2).
  const Graph g = KarateClub();
  const std::vector<NodeId> s_nodes = {0};
  const std::vector<NodeId> t_nodes = {33};
  const DenseMatrix f_exact = ExactRootedProbabilities(g, s_nodes, t_nodes);

  ForestSampler sampler(g);
  Rng rng(11);
  const auto roots = Mask(g.num_nodes(), {0, 33});
  std::vector<int> hits(static_cast<std::size_t>(g.num_nodes()), 0);
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const RootedForest& f = sampler.Sample(roots, &rng);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (f.root_of[u] == 33) ++hits[u];
    }
  }
  // Compare for a few nodes across the spectrum (F rows are ordered by
  // ascending U = V \ {0, 33}).
  const SubmatrixIndex idx =
      MakeSubmatrixIndex(g.num_nodes(), {0, 33});
  for (NodeId u : {1, 8, 13, 26, 32}) {
    const double expected = f_exact(idx.pos[u], 0);
    const double observed = static_cast<double>(hits[u]) / kSamples;
    EXPECT_NEAR(observed, expected, 0.015) << "u=" << u;
  }
}

TEST(WilsonTest, WalkStepsReportedAndBoundedOnAverage) {
  const Graph g = BarabasiAlbert(200, 3, 13);
  ForestSampler sampler(g);
  Rng rng(17);
  const auto roots = Mask(g.num_nodes(), {g.MaxDegreeNode()});
  std::int64_t total = 0;
  for (int i = 0; i < 50; ++i) {
    sampler.Sample(roots, &rng);
    EXPECT_GT(sampler.last_walk_steps(), 0);
    total += sampler.last_walk_steps();
  }
  // Lemma 3.7: expected steps are O~(n) on scale-free graphs.
  EXPECT_LT(total / 50, 200 * 100);
}

TEST(WilsonTest, MoreRootsMeansFewerSteps) {
  // Grounding hubs (SchurCFCM's trick) must reduce sampling cost.
  const Graph g = BarabasiAlbert(500, 2, 29);
  ForestSampler sampler(g);
  auto run = [&](const std::vector<NodeId>& roots) {
    Rng rng(23);
    std::int64_t total = 0;
    for (int i = 0; i < 30; ++i) {
      sampler.Sample(Mask(g.num_nodes(), roots), &rng);
      total += sampler.last_walk_steps();
    }
    return total;
  };
  std::vector<NodeId> one_root = {0};
  std::vector<NodeId> many_roots = {0};
  // Add the 10 highest-degree nodes.
  std::vector<NodeId> by_degree(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) by_degree[u] = u;
  std::partial_sort(by_degree.begin(), by_degree.begin() + 10, by_degree.end(),
                    [&](NodeId a, NodeId b) {
                      return g.degree(a) > g.degree(b);
                    });
  for (int i = 0; i < 10; ++i) {
    if (by_degree[i] != 0) many_roots.push_back(by_degree[i]);
  }
  EXPECT_LT(run(many_roots), run(one_root));
}

}  // namespace
}  // namespace cfcm
