// Distributional tests for Wilson's algorithm against exact counts from
// the matrix-forest theorem: N(S) = det(L_{-S}), and each rooted forest
// is uniform.
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "forest/wilson.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "linalg/ldlt.h"

namespace cfcm {
namespace {

double DetLaplacianSubmatrix(const Graph& g, const std::vector<NodeId>& s) {
  const DenseMatrix l =
      DenseLaplacianSubmatrix(g, MakeSubmatrixIndex(g.num_nodes(), s));
  auto ldlt = LdltFactorization::Compute(l);
  return std::exp(ldlt->LogDet());
}

// Canonical key of a forest = the parent array.
std::vector<NodeId> Key(const RootedForest& f) { return f.parent; }

TEST(WilsonDistributionTest, CycleC4RootedAtOneNodeIsUniform) {
  // C4 rooted at {0}: spanning trees of C4 = 4, all equally likely.
  const Graph g = CycleGraph(4);
  EXPECT_NEAR(DetLaplacianSubmatrix(g, {0}), 4.0, 1e-9);

  ForestSampler sampler(g);
  Rng rng(31);
  std::vector<char> roots = {1, 0, 0, 0};
  std::map<std::vector<NodeId>, int> hist;
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    ++hist[Key(sampler.Sample(roots, &rng))];
  }
  ASSERT_EQ(hist.size(), 4u);
  for (const auto& [key, count] : hist) {
    EXPECT_NEAR(count, kSamples / 4.0, 5 * std::sqrt(kSamples / 4.0));
  }
}

TEST(WilsonDistributionTest, TwoRootForestCountMatchesDeterminant) {
  // Diamond graph (K4 minus one edge), roots {0, 3}: the number of
  // distinct sampled forests must equal det(L_{-{0,3}}).
  const Graph g = BuildGraph(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
  const double expected_count = DetLaplacianSubmatrix(g, {0, 3});

  ForestSampler sampler(g);
  Rng rng(77);
  std::vector<char> roots = {1, 0, 0, 1};
  std::map<std::vector<NodeId>, int> hist;
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) {
    ++hist[Key(sampler.Sample(roots, &rng))];
  }
  EXPECT_NEAR(static_cast<double>(hist.size()), expected_count, 1e-6);
  // ... and uniformly so.
  for (const auto& [key, count] : hist) {
    const double mean = kSamples / expected_count;
    EXPECT_NEAR(count, mean, 5 * std::sqrt(mean));
  }
}

TEST(WilsonDistributionTest, CompleteGraphTreeCountCayley) {
  // K5 rooted anywhere has 5^3 = 125 spanning trees (Cayley).
  const Graph g = CompleteGraph(5);
  EXPECT_NEAR(DetLaplacianSubmatrix(g, {0}), 125.0, 1e-6);
  ForestSampler sampler(g);
  Rng rng(13);
  std::vector<char> roots = {1, 0, 0, 0, 0};
  std::map<std::vector<NodeId>, int> hist;
  for (int i = 0; i < 125 * 400; ++i) {
    ++hist[Key(sampler.Sample(roots, &rng))];
  }
  EXPECT_EQ(hist.size(), 125u);
}


TEST(WilsonDistributionTest, WeightedTriangleTreesProportionalToWeightProduct) {
  // Weighted triangle rooted at {2}: the three spanning trees have
  // probability proportional to the product of their edge conductances
  // (weighted matrix-forest theorem), normalized by det(L_{-2}).
  const Graph g =
      BuildWeightedGraph(3, {{0, 1, 2.0}, {1, 2, 0.5}, {0, 2, 4.0}});
  // Trees (as parent pairs rooted at 2): {01,02}: w=8, {01,12}: w=1,
  // {02,12}: w=2; det(L_{-2}) = 11.
  EXPECT_NEAR(DetLaplacianSubmatrix(g, {2}), 11.0, 1e-9);

  ForestSampler sampler(g);
  Rng rng(19);
  std::vector<char> roots = {0, 0, 1};
  std::map<std::vector<NodeId>, int> hist;
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) {
    ++hist[Key(sampler.Sample(roots, &rng))];
  }
  ASSERT_EQ(hist.size(), 3u);
  // parent arrays: tree {01,02}: parent0=2? No: rooted at 2, tree edges
  // {0-1, 0-2} orients 1->0->2; {0-1,1-2}: 0->1->2; {0-2,1-2}: 0->2, 1->2.
  const std::map<std::vector<NodeId>, double> expected = {
      {{2, 0, -1}, 8.0 / 11.0},
      {{1, 2, -1}, 1.0 / 11.0},
      {{2, 2, -1}, 2.0 / 11.0},
  };
  for (const auto& [key, prob] : expected) {
    ASSERT_TRUE(hist.count(key)) << "missing tree";
    const double mean = kSamples * prob;
    EXPECT_NEAR(hist[key], mean, 5 * std::sqrt(mean));
  }
}

TEST(WilsonDistributionTest, WeightedForestCountMatchesWeightedDeterminant) {
  // Diamond with asymmetric conductances, roots {0, 3}: total probability
  // mass must cover every forest and frequencies must follow the
  // weighted measure; spot-check via chi-squared-ish bound on each.
  const Graph g = BuildWeightedGraph(
      4, {{0, 1, 1.5}, {0, 2, 0.5}, {1, 2, 2.0}, {1, 3, 1.0}, {2, 3, 3.0}});
  ForestSampler sampler(g);
  Rng rng(101);
  std::vector<char> roots = {1, 0, 0, 1};
  std::map<std::vector<NodeId>, int> hist;
  constexpr int kSamples = 80000;
  for (int i = 0; i < kSamples; ++i) {
    ++hist[Key(sampler.Sample(roots, &rng))];
  }
  const double z = DetLaplacianSubmatrix(g, {0, 3});
  // Each sampled forest's weight product / det must match its frequency.
  auto weight_of = [&](const std::vector<NodeId>& parent) {
    double w = 1;
    for (NodeId u = 0; u < 4; ++u) {
      if (parent[u] >= 0) w *= g.EdgeWeight(u, parent[u]);
    }
    return w;
  };
  double covered = 0;
  for (const auto& [key, count] : hist) {
    const double prob = weight_of(key) / z;
    covered += prob;
    const double mean = kSamples * prob;
    EXPECT_NEAR(count, mean, 5 * std::sqrt(mean) + 1);
  }
  EXPECT_NEAR(covered, 1.0, 1e-9);  // every forest shape was sampled
}

}  // namespace
}  // namespace cfcm
