#include "forest/subtree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

std::vector<char> Mask(NodeId n, const std::vector<NodeId>& roots) {
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (NodeId r : roots) mask[r] = 1;
  return mask;
}

// Brute-force subtree membership: v in subtree(u) iff u is on v's chain.
bool InSubtree(const RootedForest& f, const std::vector<char>& is_root,
               NodeId v, NodeId u) {
  NodeId i = v;
  for (;;) {
    if (i == u) return true;
    if (is_root[i]) return false;
    i = f.parent[i];
  }
}

TEST(SubtreeTest, SizesMatchBruteForce) {
  const Graph g = KarateClub();
  const auto roots = Mask(g.num_nodes(), {0, 33});
  ForestSampler sampler(g);
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const RootedForest& f = sampler.Sample(roots, &rng);
    std::vector<int32_t> sizes;
    SubtreeSizes(f, &sizes);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      int expected = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!roots[v] && InSubtree(f, roots, v, u)) ++expected;
      }
      EXPECT_EQ(sizes[u], expected) << "u=" << u;
    }
  }
}

TEST(SubtreeTest, PathGraphSizes) {
  // Path rooted at 0: parent chain u -> u-1; subtree(u) = {u..n-1}.
  const Graph g = PathGraph(6);
  const auto roots = Mask(6, {0});
  ForestSampler sampler(g);
  Rng rng(1);
  const RootedForest& f = sampler.Sample(roots, &rng);
  std::vector<int32_t> sizes;
  SubtreeSizes(f, &sizes);
  for (NodeId u = 1; u < 6; ++u) EXPECT_EQ(sizes[u], 6 - u);
  EXPECT_EQ(sizes[0], 5);  // root accumulates all non-root weight
}

TEST(SubtreeTest, JlSumsMatchBruteForce) {
  const Graph g = BarabasiAlbert(60, 2, 3);
  const auto roots = Mask(g.num_nodes(), {0, 5});
  const int w = 12;
  const JlSketch sketch(w, g.num_nodes(), 77);
  ForestSampler sampler(g);
  Rng rng(9);
  const RootedForest& f = sampler.Sample(roots, &rng);

  std::vector<double> buf(static_cast<std::size_t>(g.num_nodes()) * w);
  SubtreeJlSums(f, roots, sketch, buf.data());

  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    for (int j = 0; j < w; ++j) {
      double expected = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!roots[v] && InSubtree(f, roots, v, u)) {
          expected += sketch.Entry(j, v);
        }
      }
      EXPECT_NEAR(buf[static_cast<std::size_t>(u) * w + j], expected, 1e-9);
    }
  }
}

TEST(SubtreeTest, RootsCarryNoSelfWeight) {
  const Graph g = StarGraph(8);
  const auto roots = Mask(8, {0});
  const JlSketch sketch(4, 8, 5);
  ForestSampler sampler(g);
  Rng rng(2);
  const RootedForest& f = sampler.Sample(roots, &rng);
  std::vector<double> buf(8 * 4);
  SubtreeJlSums(f, roots, sketch, buf.data());
  // Star rooted at hub: every leaf is its own subtree.
  for (NodeId u = 1; u < 8; ++u) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(buf[static_cast<std::size_t>(u) * 4 + j], sketch.Entry(j, u));
    }
  }
  // Root's accumulated sum = sum over all leaves.
  for (int j = 0; j < 4; ++j) {
    double expected = 0;
    for (NodeId v = 1; v < 8; ++v) expected += sketch.Entry(j, v);
    EXPECT_NEAR(buf[j], expected, 1e-12);
  }
}

}  // namespace
}  // namespace cfcm
