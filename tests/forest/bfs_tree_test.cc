#include "forest/bfs_tree.h"

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

TEST(TreeScaffoldTest, RootsAreDedupedAndMasked) {
  const Graph g = KarateClub();
  const TreeScaffold s = MakeTreeScaffold(g, {0, 33, 0});
  EXPECT_EQ(s.roots.size(), 2u);
  EXPECT_TRUE(s.is_root[0]);
  EXPECT_TRUE(s.is_root[33]);
  EXPECT_FALSE(s.is_root[1]);
}

TEST(TreeScaffoldTest, BfsReachesAllNodes) {
  const Graph g = GridGraph(7, 7);
  const TreeScaffold s = MakeTreeScaffold(g, {24});
  EXPECT_EQ(s.bfs.num_reached(), 49);
}

TEST(TreeScaffoldTest, DepthZeroExactlyAtRoots) {
  const Graph g = CycleGraph(12);
  const TreeScaffold s = MakeTreeScaffold(g, {0, 6});
  for (NodeId u = 0; u < 12; ++u) {
    EXPECT_EQ(s.bfs.depth[u] == 0, s.is_root[u] != 0);
  }
}

TEST(TreeScaffoldTest, ParentsAreBfsEdges) {
  const Graph g = BarabasiAlbert(150, 2, 31);
  const TreeScaffold s = MakeTreeScaffold(g, {0, 1});
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (s.is_root[u]) continue;
    ASSERT_GE(s.bfs.parent[u], 0);
    EXPECT_TRUE(g.HasEdge(u, s.bfs.parent[u]));
    EXPECT_EQ(s.bfs.depth[u], s.bfs.depth[s.bfs.parent[u]] + 1);
  }
}

}  // namespace
}  // namespace cfcm
