#include "graph/components.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

TEST(ComponentsTest, ConnectedGraphHasOneComponent) {
  EXPECT_EQ(NumComponents(CycleGraph(8)), 1);
  EXPECT_TRUE(IsConnected(KarateClub()));
}

TEST(ComponentsTest, CountsComponents) {
  const Graph g = BuildGraph(7, {{0, 1}, {1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(NumComponents(g), 3);
  EXPECT_FALSE(IsConnected(g));
}

TEST(ComponentsTest, LabelsAreConsistent) {
  const Graph g = BuildGraph(6, {{0, 1}, {2, 3}, {4, 5}});
  const auto label = ConnectedComponents(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[2], label[3]);
  EXPECT_NE(label[0], label[2]);
  EXPECT_NE(label[2], label[4]);
}

TEST(ComponentsTest, EmptyGraphNotConnected) {
  Graph g;
  EXPECT_FALSE(IsConnected(g));
}

TEST(ComponentsTest, LccExtractsLargest) {
  // Component A: 0-1-2 (3 nodes). Component B: 3-4-5-6 cycle (4 nodes).
  const Graph g = BuildGraph(7, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}, {6, 3}});
  const LccResult lcc = LargestConnectedComponent(g);
  EXPECT_EQ(lcc.graph.num_nodes(), 4);
  EXPECT_EQ(lcc.graph.num_edges(), 4);
  ASSERT_EQ(lcc.to_original.size(), 4u);
  EXPECT_EQ(lcc.to_original[0], 3);
  EXPECT_TRUE(IsConnected(lcc.graph));
}

TEST(ComponentsTest, LccPreservesStructure) {
  const Graph g = BuildGraph(5, {{1, 2}, {2, 3}, {3, 1}});  // 0,4 isolated
  const LccResult lcc = LargestConnectedComponent(g);
  EXPECT_EQ(lcc.graph.num_nodes(), 3);
  EXPECT_EQ(lcc.graph.num_edges(), 3);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(lcc.graph.degree(u), 2);
}

TEST(ComponentsTest, LccOfConnectedGraphIsIdentity) {
  const Graph g = KarateClub();
  const LccResult lcc = LargestConnectedComponent(g);
  EXPECT_EQ(lcc.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(lcc.graph.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(lcc.to_original[u], u);
  }
}


TEST(ComponentsTest, LccPreservesEdgeConductances) {
  GraphBuilder builder(6);
  builder.AddEdge(1, 2, 2.5);
  builder.AddEdge(2, 3, 0.5);
  builder.AddEdge(3, 1, 4.0);
  builder.AddEdge(4, 5, 9.0);  // smaller component, dropped
  const Graph g = std::move(std::move(builder).Build()).value();
  const LccResult lcc = LargestConnectedComponent(g);
  EXPECT_EQ(lcc.graph.num_nodes(), 3);
  EXPECT_FALSE(lcc.graph.is_unit_weighted());
  auto orig = [&](NodeId u) { return lcc.to_original[u]; };
  for (const auto& e : lcc.graph.WeightedEdges()) {
    EXPECT_DOUBLE_EQ(e.weight, g.EdgeWeight(orig(e.u), orig(e.v)));
  }
}

}  // namespace
}  // namespace cfcm
