#include "graph/generators.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/components.h"

namespace cfcm {
namespace {

TEST(GeneratorsTest, PathCycleCompleteStarShapes) {
  EXPECT_EQ(PathGraph(6).num_edges(), 5);
  EXPECT_EQ(CycleGraph(6).num_edges(), 6);
  EXPECT_EQ(CompleteGraph(6).num_edges(), 15);
  EXPECT_EQ(StarGraph(6).num_edges(), 5);
  EXPECT_EQ(GridGraph(3, 4).num_edges(), 3 * 3 + 2 * 4);
}

TEST(GeneratorsTest, BarabasiAlbertShapeAndConnectivity) {
  const Graph g = BarabasiAlbert(500, 3, 42);
  EXPECT_EQ(g.num_nodes(), 500);
  EXPECT_TRUE(IsConnected(g));
  // clique(4)=6 edges + 496*3 minus dedup collisions (none: distinct picks)
  EXPECT_EQ(g.num_edges(), 6 + 496 * 3);
}

TEST(GeneratorsTest, BarabasiAlbertIsScaleFreeIsh) {
  const Graph g = BarabasiAlbert(2000, 2, 7);
  // Hub degree should far exceed the average degree (~4).
  EXPECT_GT(g.degree(g.MaxDegreeNode()), 40);
}

TEST(GeneratorsTest, BarabasiAlbertDeterministicInSeed) {
  const Graph a = BarabasiAlbert(100, 2, 9);
  const Graph b = BarabasiAlbert(100, 2, 9);
  const Graph c = BarabasiAlbert(100, 2, 10);
  EXPECT_EQ(a.Edges(), b.Edges());
  EXPECT_NE(a.Edges(), c.Edges());
}

TEST(GeneratorsTest, ErdosRenyiGnmHasExactEdgeCount) {
  const Graph g = ErdosRenyiGnm(200, 700, 3);
  EXPECT_EQ(g.num_nodes(), 200);
  EXPECT_EQ(g.num_edges(), 700);
}

TEST(GeneratorsTest, WattsStrogatzKeepsEdgeBudget) {
  const Graph g = WattsStrogatz(300, 4, 0.1, 5);
  EXPECT_EQ(g.num_nodes(), 300);
  // Rewiring preserves the number of edges (n*k), modulo rare collisions.
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 300.0 * 4, 8.0);
}

TEST(GeneratorsTest, WattsStrogatzZeroBetaIsRingLattice) {
  const Graph g = WattsStrogatz(50, 3, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 150);
  for (NodeId u = 0; u < 50; ++u) EXPECT_EQ(g.degree(u), 6);
}

TEST(GeneratorsTest, PowerlawClusterShape) {
  const Graph g = PowerlawCluster(400, 3, 0.5, 11);
  EXPECT_EQ(g.num_nodes(), 400);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.num_edges(), 6 + 396 * 3);
}

TEST(GeneratorsTest, PowerlawClusterHasHigherClusteringThanBa) {
  auto triangles = [](const Graph& g) {
    std::int64_t count = 0;
    for (const auto& [u, v] : g.Edges()) {
      for (NodeId w : g.neighbors(u)) {
        if (w != v && g.HasEdge(v, w)) ++count;
      }
    }
    return count;
  };
  const Graph ba = BarabasiAlbert(600, 3, 21);
  const Graph plc = PowerlawCluster(600, 3, 0.8, 21);
  EXPECT_GT(triangles(plc), triangles(ba));
}

TEST(GeneratorsTest, RandomGeometricConnectedWithBackbone) {
  const Graph g = RandomGeometric(300, 0.05, 13);
  EXPECT_EQ(g.num_nodes(), 300);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, RandomGeometricRadiusControlsDensity) {
  const Graph sparse = RandomGeometric(300, 0.03, 13);
  const Graph dense = RandomGeometric(300, 0.12, 13);
  EXPECT_GT(dense.num_edges(), sparse.num_edges());
}

TEST(GeneratorsTest, KnnGraphDegreesAtLeastK) {
  Rng rng(99);
  std::vector<std::array<double, 3>> pts(60);
  for (auto& p : pts) {
    p = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
  }
  const Graph g = KnnGraph(pts, 4);
  EXPECT_EQ(g.num_nodes(), 60);
  for (NodeId u = 0; u < 60; ++u) EXPECT_GE(g.degree(u), 4);
}


TEST(GeneratorsTest, AssignUniformWeightsPreservesTopology) {
  const Graph base = BarabasiAlbert(120, 2, 5);
  const Graph g = AssignUniformWeights(base, 0.5, 2.0, 9);
  EXPECT_FALSE(g.is_unit_weighted());
  EXPECT_EQ(g.num_nodes(), base.num_nodes());
  EXPECT_EQ(g.num_edges(), base.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.degree(u), base.degree(u));
  }
  for (const auto& e : g.WeightedEdges()) {
    EXPECT_GE(e.weight, 0.5);
    EXPECT_LE(e.weight, 2.0);
  }
}

TEST(GeneratorsTest, AssignUniformWeightsDeterministicInSeed) {
  const Graph base = WattsStrogatz(60, 3, 0.2, 11);
  const Graph a = AssignUniformWeights(base, 0.1, 10.0, 42);
  const Graph b = AssignUniformWeights(base, 0.1, 10.0, 42);
  const Graph c = AssignUniformWeights(base, 0.1, 10.0, 43);
  EXPECT_EQ(a.raw_weights(), b.raw_weights());
  EXPECT_NE(a.raw_weights(), c.raw_weights());
}

}  // namespace
}  // namespace cfcm
