#include "graph/spec.h"

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/io.h"

namespace cfcm {
namespace {

TEST(GraphSpecTest, LoadsBuiltins) {
  for (const char* name : {"karate", "karate-w", "usa", "zebra", "dolphins"}) {
    StatusOr<Graph> graph = LoadGraphFromSpec(name);
    ASSERT_TRUE(graph.ok()) << name;
    EXPECT_GT(graph->num_nodes(), 0) << name;
  }
  EXPECT_TRUE(LoadGraphFromSpec("karate-w")->is_unit_weighted() == false);
}

TEST(GraphSpecTest, GeneratorSpecsAreDeterministicPerString) {
  StatusOr<Graph> a = LoadGraphFromSpec("ba:100,3,5");
  StatusOr<Graph> b = LoadGraphFromSpec("ba:100,3,5");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_nodes(), 100);
  EXPECT_EQ(a->Edges(), b->Edges());
  // Default seed is 1: "ba:100,3" == "ba:100,3,1".
  EXPECT_EQ(LoadGraphFromSpec("ba:100,3")->Edges(),
            LoadGraphFromSpec("ba:100,3,1")->Edges());

  StatusOr<Graph> ws = LoadGraphFromSpec("ws:60,3,0.2,9");
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->num_nodes(), 60);
  StatusOr<Graph> grid = LoadGraphFromSpec("grid:4x6");
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->num_nodes(), 24);
}

TEST(GraphSpecTest, RejectsMalformedAndOutOfRangeSpecs) {
  // Parse failures and semantic range violations both come back as
  // InvalidArgument instead of tripping generator asserts (which Release
  // builds compile out — these specs arrive over the network).
  for (const char* bad :
       {"", "ba:", "ba:100", "ba:x,3", "ba:100,3,4,5", "ba:3,3", "ba:0,1",
        "ba:100,0", "ws:60,3", "ws:60,0,0.2", "ws:6,3,0.2", "ws:60,3,1.5",
        "ws:60,3,-0.1", "grid:4", "grid:4x", "grid:0x5", "grid:4x0",
        "grid:4x5x6",
        // Counts past the 32-bit-safe ceiling must be rejected, not
        // silently truncated through the NodeId cast (2^32+34 would
        // otherwise wrap to a 34-node graph) or overflowed (65536^2).
        "ba:4294967330,2", "ws:4294967330,3,0.2", "grid:65536x65536",
        "grid:200000000x1"}) {
    StatusOr<Graph> graph = LoadGraphFromSpec(bad);
    ASSERT_FALSE(graph.ok()) << "spec: " << bad;
    EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument)
        << "spec: " << bad;
  }
}

TEST(GraphSpecTest, FallsBackToEdgeListPath) {
  const std::string path = ::testing::TempDir() + "/spec_edges.txt";
  ASSERT_TRUE(SaveEdgeList(KarateClub(), path).ok());
  StatusOr<Graph> graph = LoadGraphFromSpec(path);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 34);
  EXPECT_EQ(graph->num_edges(), 78);

  StatusOr<Graph> missing = LoadGraphFromSpec("/no/such/file.txt");
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace cfcm
