// GraphDelta / Graph::Apply: copy-on-write snapshot semantics and the
// GraphBuilder validation rules on the mutation path (DESIGN.md §11).
#include "graph/delta.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/datasets.h"

namespace cfcm {
namespace {

// Byte-level equality of the CSR arrays — the same predicate the
// serving fingerprint hashes over.
void ExpectSameBits(const Graph& a, const Graph& b) {
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.raw_neighbors(), b.raw_neighbors());
  EXPECT_EQ(a.raw_weights(), b.raw_weights());
}

TEST(GraphDeltaTest, AddEdgeProducesNewSnapshotAndLeavesBaseUntouched) {
  const Graph base = BuildGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  GraphDelta delta;
  delta.AddEdge(0, 3);
  StatusOr<Graph> next = base.Apply(delta);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(next->num_edges(), 4);
  EXPECT_TRUE(next->HasEdge(0, 3));
  EXPECT_TRUE(next->is_unit_weighted());  // all-1.0 weights degrade
  // Copy-on-write: the base graph still has its original edge set.
  EXPECT_EQ(base.num_edges(), 3);
  EXPECT_FALSE(base.HasEdge(0, 3));
}

TEST(GraphDeltaTest, RemoveMissingEdgeIsNotFound) {
  const Graph base = BuildGraph(3, {{0, 1}, {1, 2}});
  GraphDelta delta;
  delta.RemoveEdge(0, 2);
  StatusOr<Graph> next = base.Apply(delta);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kNotFound);

  // Removing the same edge twice in one delta: the second removal sees
  // a missing edge.
  GraphDelta twice;
  twice.RemoveEdge(0, 1);
  twice.RemoveEdge(0, 1);
  EXPECT_EQ(base.Apply(twice).status().code(), StatusCode::kNotFound);
}

TEST(GraphDeltaTest, ReweightValidationCorners) {
  const Graph base = BuildWeightedGraph(3, {{0, 1, 2.0}, {1, 2, 0.5}});

  GraphDelta missing;
  missing.ReweightEdge(0, 2, 1.0);
  EXPECT_EQ(base.Apply(missing).status().code(), StatusCode::kNotFound);

  for (double bad : {0.0, -1.0, std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN()}) {
    GraphDelta delta;
    delta.ReweightEdge(0, 1, bad);
    StatusOr<Graph> next = base.Apply(delta);
    ASSERT_FALSE(next.ok()) << "weight " << bad;
    EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
  }

  GraphDelta good;
  good.ReweightEdge(0, 1, 4.0);
  StatusOr<Graph> next = base.Apply(good);
  ASSERT_TRUE(next.ok());
  EXPECT_DOUBLE_EQ(next->EdgeWeight(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(next->EdgeWeight(1, 2), 0.5);  // untouched edge kept
}

TEST(GraphDeltaTest, AddWeightValidation) {
  const Graph base = BuildGraph(3, {{0, 1}, {1, 2}});
  for (double bad : {0.0, -2.0, std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN()}) {
    GraphDelta delta;
    delta.AddEdge(0, 2, bad);
    StatusOr<Graph> next = base.Apply(delta);
    ASSERT_FALSE(next.ok()) << "weight " << bad;
    EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(GraphDeltaTest, DuplicateAddsSumConductances) {
  const Graph base = BuildWeightedGraph(3, {{0, 1, 2.0}, {1, 2, 1.0}});
  GraphDelta delta;
  delta.AddEdge(0, 2, 0.5);
  delta.AddEdge(2, 0, 0.25);  // same undirected edge, reversed endpoints
  delta.AddEdge(0, 1, 3.0);   // merges into the existing conductance
  StatusOr<Graph> next = base.Apply(delta);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_DOUBLE_EQ(next->EdgeWeight(0, 2), 0.75);
  EXPECT_DOUBLE_EQ(next->EdgeWeight(0, 1), 5.0);
  EXPECT_EQ(next->num_edges(), 3);
}

TEST(GraphDeltaTest, AllOnesResultDegradesToUnitWeighted) {
  const Graph base = BuildWeightedGraph(3, {{0, 1, 2.0}, {1, 2, 1.0}});
  ASSERT_FALSE(base.is_unit_weighted());
  GraphDelta delta;
  delta.ReweightEdge(0, 1, 1.0);
  StatusOr<Graph> next = base.Apply(delta);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->is_unit_weighted());
  ExpectSameBits(*next, BuildGraph(3, {{0, 1}, {1, 2}}));
}

TEST(GraphDeltaTest, AddNodesAppendsIsolatedIds) {
  const Graph base = BuildGraph(3, {{0, 1}, {1, 2}});
  GraphDelta delta;
  delta.AddNodes(2);
  delta.AddEdge(2, 3);
  delta.AddEdge(3, 4);
  StatusOr<Graph> next = base.Apply(delta);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(next->num_nodes(), 5);
  EXPECT_EQ(next->num_edges(), 4);
  EXPECT_EQ(next->degree(4), 1);
}

TEST(GraphDeltaTest, AddNodesOverflowIsRejected) {
  const Graph base = BuildGraph(3, {{0, 1}, {1, 2}});
  GraphDelta delta;
  delta.AddNodes(std::numeric_limits<NodeId>::max());  // 3 + max overflows
  StatusOr<Graph> next = base.Apply(delta);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kOutOfRange);

  // Repeated calls accumulate in 64 bits: they must reject cleanly,
  // not wrap int32 into a silent no-op delta.
  GraphDelta repeated;
  for (int i = 0; i < 4; ++i) repeated.AddNodes(NodeId{1} << 30);
  EXPECT_EQ(repeated.add_nodes(), int64_t{4} << 30);
  EXPECT_EQ(base.Apply(repeated).status().code(), StatusCode::kOutOfRange);

  // A negative count is an error even when later calls cancel it back
  // to a non-negative total.
  GraphDelta negative;
  negative.AddNodes(-5);
  negative.AddNodes(10);
  EXPECT_EQ(base.Apply(negative).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphDeltaTest, EndpointAndSelfLoopValidation) {
  const Graph base = BuildGraph(3, {{0, 1}, {1, 2}});

  GraphDelta beyond;
  beyond.AddEdge(0, 3);  // node 3 does not exist and was not added
  EXPECT_EQ(base.Apply(beyond).status().code(), StatusCode::kOutOfRange);

  GraphDelta negative;
  negative.AddEdge(-1, 2);
  EXPECT_EQ(base.Apply(negative).status().code(),
            StatusCode::kInvalidArgument);

  GraphDelta loop;
  loop.AddEdge(1, 1);
  EXPECT_EQ(base.Apply(loop).status().code(), StatusCode::kInvalidArgument);

  GraphDelta remove_beyond;
  remove_beyond.RemoveEdge(0, 7);
  EXPECT_EQ(base.Apply(remove_beyond).status().code(),
            StatusCode::kOutOfRange);
}

TEST(GraphDeltaTest, RemoveThenReAddInOneDeltaUsesTheNewWeight) {
  const Graph base = BuildWeightedGraph(3, {{0, 1, 2.0}, {1, 2, 1.0}});
  GraphDelta delta;
  delta.RemoveEdge(0, 1);
  delta.AddEdge(0, 1, 7.0);  // additions apply after removals
  StatusOr<Graph> next = base.Apply(delta);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_DOUBLE_EQ(next->EdgeWeight(0, 1), 7.0);
  EXPECT_EQ(next->num_edges(), 2);
}

TEST(GraphDeltaTest, EmptyDeltaRebuildsIdenticalBits) {
  const Graph base = KarateClub();
  StatusOr<Graph> next = base.Apply(GraphDelta{});
  ASSERT_TRUE(next.ok());
  ExpectSameBits(base, *next);
}

TEST(GraphDeltaTest, InverseRoundTripsBitForBitOnUnitGraph) {
  const Graph base = KarateClub();
  GraphDelta delta;
  delta.RemoveEdge(0, 1);
  delta.AddEdge(0, 9, 2.5);   // karate has no {0, 9} edge
  delta.AddEdge(2, 3, 1.0);   // existing edge: conductance 1 + 1 = 2
  StatusOr<GraphDelta> inverse = InverseOf(base, delta);
  ASSERT_TRUE(inverse.ok()) << inverse.status().ToString();

  StatusOr<Graph> mutated = base.Apply(delta);
  ASSERT_TRUE(mutated.ok());
  EXPECT_FALSE(mutated->is_unit_weighted());
  StatusOr<Graph> reverted = mutated->Apply(*inverse);
  ASSERT_TRUE(reverted.ok()) << reverted.status().ToString();
  EXPECT_TRUE(reverted->is_unit_weighted());
  ExpectSameBits(base, *reverted);
}

TEST(GraphDeltaTest, InverseRoundTripsBitForBitOnWeightedGraph) {
  const Graph base = KarateClubWeighted();
  GraphDelta delta;
  delta.RemoveEdge(0, 1);
  delta.ReweightEdge(2, 3, 0.125);
  delta.AddEdge(0, 9, 3.0);
  StatusOr<GraphDelta> inverse = InverseOf(base, delta);
  ASSERT_TRUE(inverse.ok()) << inverse.status().ToString();
  StatusOr<Graph> mutated = base.Apply(delta);
  ASSERT_TRUE(mutated.ok());
  StatusOr<Graph> reverted = mutated->Apply(*inverse);
  ASSERT_TRUE(reverted.ok());
  ExpectSameBits(base, *reverted);
}

TEST(GraphDeltaTest, InverseRejectsNodeAdditionsAndInapplicableDeltas) {
  const Graph base = BuildGraph(3, {{0, 1}, {1, 2}});
  GraphDelta grows;
  grows.AddNodes(1);
  EXPECT_EQ(InverseOf(base, grows).status().code(),
            StatusCode::kInvalidArgument);

  GraphDelta missing;
  missing.RemoveEdge(0, 2);
  EXPECT_EQ(InverseOf(base, missing).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cfcm
