#include "graph/builder.h"

#include <gtest/gtest.h>

namespace cfcm {
namespace {

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(0, 1);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder builder;
  builder.AddEdge(2, 2);
  builder.AddEdge(0, 1);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphBuilderTest, NodeCountFromMaxEndpoint) {
  GraphBuilder builder;
  builder.AddEdge(0, 9);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_EQ(g.num_nodes(), 10);
}

TEST(GraphBuilderTest, ExplicitNodeCountIsRespected) {
  GraphBuilder builder(8);
  builder.AddEdge(0, 1);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_EQ(g.num_nodes(), 8);
}

TEST(GraphBuilderTest, RejectsNegativeIds) {
  GraphBuilder builder;
  builder.AddEdge(-1, 3);
  auto result = std::move(builder).Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, EmptyBuildSucceeds) {
  GraphBuilder builder;
  auto result = std::move(builder).Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_nodes(), 0);
}

TEST(GraphBuilderTest, BuildGraphHelperRoundTrips) {
  const Graph g = BuildGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(GraphBuilderTest, CountsAddedEdgesBeforeDedup) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  EXPECT_EQ(builder.num_added_edges(), 2u);
}

}  // namespace
}  // namespace cfcm
