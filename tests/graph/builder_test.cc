#include "graph/builder.h"

#include <cmath>
#include <limits>
#include <map>

#include <gtest/gtest.h>

namespace cfcm {
namespace {

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(0, 1);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder builder;
  builder.AddEdge(2, 2);
  builder.AddEdge(0, 1);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphBuilderTest, NodeCountFromMaxEndpoint) {
  GraphBuilder builder;
  builder.AddEdge(0, 9);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_EQ(g.num_nodes(), 10);
}

TEST(GraphBuilderTest, ExplicitNodeCountIsRespected) {
  GraphBuilder builder(8);
  builder.AddEdge(0, 1);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_EQ(g.num_nodes(), 8);
}

TEST(GraphBuilderTest, RejectsNegativeIds) {
  GraphBuilder builder;
  builder.AddEdge(-1, 3);
  auto result = std::move(builder).Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, EmptyBuildSucceeds) {
  GraphBuilder builder;
  auto result = std::move(builder).Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_nodes(), 0);
}

TEST(GraphBuilderTest, BuildGraphHelperRoundTrips) {
  const Graph g = BuildGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(GraphBuilderTest, CountsAddedEdgesBeforeDedup) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  EXPECT_EQ(builder.num_added_edges(), 2u);
}

TEST(GraphBuilderTest, WeightedDuplicatesSumConductances) {
  GraphBuilder builder;
  builder.AddEdge(0, 1, 1.5);
  builder.AddEdge(1, 0, 2.5);  // parallel conductors
  builder.AddEdge(1, 2, 0.5);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_FALSE(g.is_unit_weighted());
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 0.5);
}

TEST(GraphBuilderTest, MixedUnitAndWeightedEdgesSum) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);  // unit edge added before any weight appears
  builder.AddEdge(0, 1, 2.0);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 3.0);
}

TEST(GraphBuilderTest, AllOnesWeightsDegradeToUnitGraph) {
  GraphBuilder builder;
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_TRUE(g.is_unit_weighted());
  EXPECT_TRUE(g.raw_weights().empty());
}

TEST(GraphBuilderTest, RejectsNonPositiveOrNonFiniteWeights) {
  for (double bad : {0.0, -1.0, std::nan(""),
                     std::numeric_limits<double>::infinity()}) {
    GraphBuilder builder;
    builder.AddEdge(0, 1, bad);
    auto result = std::move(builder).Build();
    ASSERT_FALSE(result.ok()) << "weight " << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(GraphBuilderTest, WeightedSelfLoopsDropped) {
  GraphBuilder builder;
  builder.AddEdge(1, 1, 5.0);
  builder.AddEdge(0, 1, 2.0);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.total_weight(), 2.0);
}

TEST(GraphBuilderTest, WeightsFollowNeighborSortOrder) {
  // Insert in scrambled order; every CSR slot must still pair the right
  // conductance with the right neighbor.
  GraphBuilder builder;
  builder.AddEdge(2, 4, 0.4);
  builder.AddEdge(2, 0, 0.1);
  builder.AddEdge(2, 3, 0.3);
  builder.AddEdge(2, 1, 0.2);
  const Graph g = std::move(std::move(builder).Build()).value();
  const auto adj = g.neighbors(2);
  const auto w = g.weights(2);
  ASSERT_EQ(adj.size(), 4u);
  const std::map<NodeId, double> expected = {
      {0, 0.1}, {1, 0.2}, {3, 0.3}, {4, 0.4}};
  for (std::size_t i = 0; i < adj.size(); ++i) {
    EXPECT_DOUBLE_EQ(w[i], expected.at(adj[i]));
  }
}

}  // namespace
}  // namespace cfcm
