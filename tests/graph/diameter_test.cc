#include "graph/diameter.h"

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

TEST(DiameterTest, PathGraphExact) {
  EXPECT_EQ(ExactDiameter(PathGraph(10)), 9);
}

TEST(DiameterTest, CycleGraphExact) {
  EXPECT_EQ(ExactDiameter(CycleGraph(10)), 5);
  EXPECT_EQ(ExactDiameter(CycleGraph(11)), 5);
}

TEST(DiameterTest, CompleteGraphExact) {
  EXPECT_EQ(ExactDiameter(CompleteGraph(7)), 1);
}

TEST(DiameterTest, StarGraphExact) {
  EXPECT_EQ(ExactDiameter(StarGraph(12)), 2);
}

TEST(DiameterTest, GridGraphExact) {
  EXPECT_EQ(ExactDiameter(GridGraph(3, 4)), 5);  // (rows-1)+(cols-1)
}

TEST(DiameterTest, KarateDiameterIsFive) {
  EXPECT_EQ(ExactDiameter(KarateClub()), 5);
}

TEST(DiameterTest, EstimateIsLowerBoundAndUsuallyTight) {
  for (const auto& g :
       {PathGraph(40), CycleGraph(30), GridGraph(6, 7), KarateClub()}) {
    const NodeId exact = ExactDiameter(g);
    const NodeId est = EstimateDiameter(g);
    EXPECT_LE(est, exact);
    EXPECT_GE(est, exact - 1);  // double sweep is near-exact here
  }
}

TEST(DiameterTest, EstimateOnEmptyGraphIsZero) {
  Graph g;
  EXPECT_EQ(EstimateDiameter(g), 0);
}

}  // namespace
}  // namespace cfcm
