#include "graph/datasets.h"

#include <gtest/gtest.h>

#include "graph/components.h"

namespace cfcm {
namespace {

TEST(DatasetsTest, KarateShape) {
  const Graph g = KarateClub();
  EXPECT_EQ(g.num_nodes(), 34);
  EXPECT_EQ(g.num_edges(), 78);
  EXPECT_TRUE(IsConnected(g));
}

TEST(DatasetsTest, KarateKnownStructure) {
  const Graph g = KarateClub();
  // Mr. Hi (node 0) has degree 16; John A. (node 33) has degree 17.
  EXPECT_EQ(g.degree(0), 16);
  EXPECT_EQ(g.degree(33), 17);
  EXPECT_EQ(g.MaxDegreeNode(), 33);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(32, 33));
  EXPECT_FALSE(g.HasEdge(0, 33));  // the two leaders are not adjacent
}

TEST(DatasetsTest, ContiguousUsaShape) {
  const Graph g = ContiguousUsa();
  EXPECT_EQ(g.num_nodes(), 49);
  EXPECT_EQ(g.num_edges(), 107);
  EXPECT_TRUE(IsConnected(g));
}

TEST(DatasetsTest, ContiguousUsaKnownDegrees) {
  const Graph g = ContiguousUsa();
  // Tennessee and Missouri each border 8 states: max degree 8.
  NodeId max_deg = 0;
  int count_deg8 = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_deg = std::max(max_deg, g.degree(u));
    if (g.degree(u) == 8) ++count_deg8;
  }
  EXPECT_EQ(max_deg, 8);
  EXPECT_EQ(count_deg8, 2);
  // Maine borders exactly one state (New Hampshire): exactly one
  // degree-1 node.
  int count_deg1 = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) count_deg1 += g.degree(u) == 1;
  EXPECT_EQ(count_deg1, 1);
}

TEST(DatasetsTest, ZebraSyntheticShape) {
  const Graph g = ZebraSynthetic();
  EXPECT_EQ(g.num_nodes(), 23);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_GE(g.num_edges(), 23);  // dense social structure
}

TEST(DatasetsTest, DolphinsSyntheticShape) {
  const Graph g = DolphinsSynthetic();
  EXPECT_EQ(g.num_nodes(), 62);
  EXPECT_EQ(g.num_edges(), 159);
  EXPECT_TRUE(IsConnected(g));
}

TEST(DatasetsTest, DatasetsAreDeterministic) {
  const Graph a = DolphinsSynthetic();
  const Graph b = DolphinsSynthetic();
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.Edges(), b.Edges());
  const Graph za = ZebraSynthetic();
  const Graph zb = ZebraSynthetic();
  EXPECT_EQ(za.Edges(), zb.Edges());
}

}  // namespace
}  // namespace cfcm
