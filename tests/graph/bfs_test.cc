#include "graph/bfs.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"

namespace cfcm {
namespace {

TEST(BfsTest, PathGraphDepths) {
  const Graph g = PathGraph(5);
  const BfsResult bfs = Bfs(g, 0);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(bfs.depth[u], u);
  EXPECT_EQ(bfs.parent[0], -1);
  for (NodeId u = 1; u < 5; ++u) EXPECT_EQ(bfs.parent[u], u - 1);
}

TEST(BfsTest, OrderStartsAtSourcesAndIsMonotoneInDepth) {
  const Graph g = GridGraph(5, 5);
  const BfsResult bfs = Bfs(g, 12);  // center
  EXPECT_EQ(bfs.order.front(), 12);
  for (std::size_t i = 1; i < bfs.order.size(); ++i) {
    EXPECT_LE(bfs.depth[bfs.order[i - 1]], bfs.depth[bfs.order[i]]);
  }
}

TEST(BfsTest, MultiSourceTakesNearestSource) {
  const Graph g = PathGraph(10);
  const BfsResult bfs = Bfs(g, std::vector<NodeId>{0, 9});
  EXPECT_EQ(bfs.depth[0], 0);
  EXPECT_EQ(bfs.depth[9], 0);
  EXPECT_EQ(bfs.depth[4], 4);
  EXPECT_EQ(bfs.depth[5], 4);
}

TEST(BfsTest, DuplicateSourcesAreIgnored) {
  const Graph g = CycleGraph(6);
  const BfsResult bfs = Bfs(g, std::vector<NodeId>{2, 2, 2});
  EXPECT_EQ(bfs.num_reached(), 6);
  EXPECT_EQ(bfs.depth[2], 0);
}

TEST(BfsTest, DisconnectedNodesUnreached) {
  const Graph g = BuildGraph(4, {{0, 1}, {2, 3}});
  const BfsResult bfs = Bfs(g, 0);
  EXPECT_EQ(bfs.num_reached(), 2);
  EXPECT_EQ(bfs.depth[2], BfsResult::kUnreached);
  EXPECT_EQ(bfs.parent[3], BfsResult::kUnreached);
}

TEST(BfsTest, ParentsFormValidTree) {
  const Graph g = BarabasiAlbert(200, 2, 5);
  const BfsResult bfs = Bfs(g, 0);
  ASSERT_EQ(bfs.num_reached(), 200);
  for (NodeId u = 1; u < 200; ++u) {
    const NodeId p = bfs.parent[u];
    ASSERT_NE(p, BfsResult::kUnreached);
    EXPECT_TRUE(g.HasEdge(u, p));
    EXPECT_EQ(bfs.depth[u], bfs.depth[p] + 1);
  }
}

}  // namespace
}  // namespace cfcm
