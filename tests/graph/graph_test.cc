#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace cfcm {
namespace {

Graph Triangle() { return BuildGraph(3, {{0, 1}, {1, 2}, {0, 2}}); }

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.MaxDegreeNode(), -1);
}

TEST(GraphTest, CountsNodesAndEdges) {
  const Graph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(GraphTest, DegreesAndNeighbors) {
  const Graph g = BuildGraph(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 1);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1);
  EXPECT_EQ(nbrs[1], 2);
  EXPECT_EQ(nbrs[2], 3);
}

TEST(GraphTest, NeighborsAreSorted) {
  const Graph g = BuildGraph(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  const auto nbrs = g.neighbors(2);
  for (std::size_t i = 1; i < nbrs.size(); ++i) EXPECT_LT(nbrs[i - 1], nbrs[i]);
}

TEST(GraphTest, HasEdge) {
  const Graph g = Triangle();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 0));
  const Graph h = BuildGraph(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(h.HasEdge(0, 2));
}

TEST(GraphTest, MaxDegreeNodeBreaksTiesBySmallestId) {
  const Graph g = BuildGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.MaxDegreeNode(), 0);  // all degree 2
}

TEST(GraphTest, EdgesListsEachEdgeOnceOrdered) {
  const Graph g = Triangle();
  const auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(GraphTest, UnitGraphReportsUnitWeights) {
  const Graph g = Triangle();
  EXPECT_TRUE(g.is_unit_weighted());
  EXPECT_TRUE(g.weights(0).empty());
  EXPECT_EQ(g.weighted_degree(0), 2.0);
  EXPECT_EQ(g.total_weight(), 3.0);
  EXPECT_EQ(g.EdgeWeight(0, 1), 1.0);
  EXPECT_EQ(g.EdgeWeight(0, 0), 0.0);  // absent edge
  EXPECT_EQ(g.MaxWeightedDegreeNode(), g.MaxDegreeNode());
}

TEST(GraphTest, WeightedAccessors) {
  const Graph g =
      BuildWeightedGraph(3, {{0, 1, 2.0}, {1, 2, 0.5}, {0, 2, 4.0}});
  EXPECT_FALSE(g.is_unit_weighted());
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 6.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 2.5);
  EXPECT_DOUBLE_EQ(g.weighted_degree(2), 4.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 6.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 2.0);  // symmetric
  EXPECT_EQ(g.MaxWeightedDegreeNode(), 0);
  EXPECT_EQ(g.MaxDegreeNode(), 0);  // all combinatorial degree 2, tie -> 0
  const auto w = g.weights(1);
  const auto adj = g.neighbors(1);
  ASSERT_EQ(w.size(), adj.size());
  for (std::size_t i = 0; i < adj.size(); ++i) {
    EXPECT_DOUBLE_EQ(w[i], g.EdgeWeight(1, adj[i]));
  }
}

TEST(GraphTest, WeightedEdgesListsConductances) {
  const Graph g = BuildWeightedGraph(3, {{1, 2, 0.25}, {0, 1, 3.0}});
  const auto edges = g.WeightedEdges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].u, 0);
  EXPECT_EQ(edges[0].v, 1);
  EXPECT_DOUBLE_EQ(edges[0].weight, 3.0);
  EXPECT_EQ(edges[1].u, 1);
  EXPECT_EQ(edges[1].v, 2);
  EXPECT_DOUBLE_EQ(edges[1].weight, 0.25);
}

TEST(GraphTest, IsolatedNodeHasZeroDegree) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const Graph g = std::move(std::move(builder).Build()).value();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.degree(2), 0);
}

}  // namespace
}  // namespace cfcm
