#include "graph/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/datasets.h"

namespace cfcm {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/cfcm_io_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(IoTest, LoadsSimpleEdgeList) {
  WriteFile("0 1\n1 2\n2 0\n");
  auto g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3);
  EXPECT_EQ(g->num_edges(), 3);
}

TEST_F(IoTest, SkipsCommentsAndBlankLines) {
  WriteFile("# comment\n% konect header\n\n0 1\n\n1 2\n");
  auto g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
}

TEST_F(IoTest, IgnoresTrailingColumns) {
  WriteFile("0 1 3.5 1290000000\n1 2 1.0 1290000001\n");
  auto g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
}

TEST_F(IoTest, MissingFileIsIoError) {
  auto g = LoadEdgeList("/nonexistent/definitely/missing.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, MalformedLineIsIoError) {
  WriteFile("0 1\nnot numbers\n");
  auto g = LoadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, NegativeIdIsIoError) {
  WriteFile("0 -2\n");
  auto g = LoadEdgeList(path_);
  ASSERT_FALSE(g.ok());
}

TEST_F(IoTest, SaveThenLoadRoundTripsKarate) {
  const Graph karate = KarateClub();
  ASSERT_TRUE(SaveEdgeList(karate, path_).ok());
  auto loaded = LoadEdgeList(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), karate.num_nodes());
  EXPECT_EQ(loaded->num_edges(), karate.num_edges());
  for (NodeId u = 0; u < karate.num_nodes(); ++u) {
    EXPECT_EQ(loaded->degree(u), karate.degree(u));
  }
}

TEST_F(IoTest, SaveToUnwritablePathFails) {
  const Graph karate = KarateClub();
  EXPECT_FALSE(SaveEdgeList(karate, "/nonexistent/dir/out.txt").ok());
}

}  // namespace
}  // namespace cfcm
