#include "graph/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/datasets.h"

namespace cfcm {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/cfcm_io_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(IoTest, LoadsSimpleEdgeList) {
  WriteFile("0 1\n1 2\n2 0\n");
  auto g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3);
  EXPECT_EQ(g->num_edges(), 3);
}

TEST_F(IoTest, SkipsCommentsAndBlankLines) {
  WriteFile("# comment\n% konect header\n\n0 1\n\n1 2\n");
  auto g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
}

TEST_F(IoTest, ParsesWeightColumnAndIgnoresTimestamps) {
  WriteFile("0 1 3.5 1290000000\n1 2 1.0 1290000001\n");
  auto g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
  EXPECT_FALSE(g->is_unit_weighted());
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(1, 2), 1.0);
}

TEST_F(IoTest, AllOnesWeightColumnLoadsUnitWeighted) {
  WriteFile("0 1 1.0\n1 2 1\n");
  auto g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->is_unit_weighted());
  EXPECT_EQ(g->num_edges(), 2);
}

TEST_F(IoTest, CrlfLineEndingsAreTolerated) {
  WriteFile("# header\r\n0 1 2.5\r\n\r\n1 2\r\n");
  auto g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(1, 2), 1.0);
}

TEST_F(IoTest, DuplicateWeightedEdgesAreSummed) {
  WriteFile("0 1 1.5\n1 0 2.5\n1 2 0.5\n");
  auto g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 4.0);
}

TEST_F(IoTest, DuplicateUnweightedEdgesAreDeduplicated) {
  WriteFile("0 1\n1 0\n0 1\n1 2\n");
  auto g = LoadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->is_unit_weighted());
  EXPECT_EQ(g->num_edges(), 2);
}

TEST_F(IoTest, RejectsBadWeights) {
  for (const char* line :
       {"0 1 0\n", "0 1 -2.5\n", "0 1 nan\n", "0 1 inf\n", "0 1 bogus\n"}) {
    WriteFile(line);
    auto g = LoadEdgeList(path_);
    ASSERT_FALSE(g.ok()) << "line: " << line;
    EXPECT_EQ(g.status().code(), StatusCode::kIoError) << "line: " << line;
  }
}

TEST_F(IoTest, MissingFileIsIoError) {
  auto g = LoadEdgeList("/nonexistent/definitely/missing.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, MalformedLineIsIoError) {
  WriteFile("0 1\nnot numbers\n");
  auto g = LoadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, NegativeIdIsIoError) {
  WriteFile("0 -2\n");
  auto g = LoadEdgeList(path_);
  ASSERT_FALSE(g.ok());
}

TEST_F(IoTest, SaveThenLoadRoundTripsKarate) {
  const Graph karate = KarateClub();
  ASSERT_TRUE(SaveEdgeList(karate, path_).ok());
  auto loaded = LoadEdgeList(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), karate.num_nodes());
  EXPECT_EQ(loaded->num_edges(), karate.num_edges());
  for (NodeId u = 0; u < karate.num_nodes(); ++u) {
    EXPECT_EQ(loaded->degree(u), karate.degree(u));
  }
}

TEST_F(IoTest, WeightedRoundTripPreservesConductances) {
  const Graph g = KarateClubWeighted();
  ASSERT_TRUE(SaveEdgeList(g, path_).ok());
  auto loaded = LoadEdgeList(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_nodes(), g.num_nodes());
  ASSERT_EQ(loaded->num_edges(), g.num_edges());
  EXPECT_FALSE(loaded->is_unit_weighted());
  for (const auto& e : g.WeightedEdges()) {
    EXPECT_DOUBLE_EQ(loaded->EdgeWeight(e.u, e.v), e.weight);
  }
}

TEST_F(IoTest, UnitRoundTripStaysUnitWeighted) {
  const Graph karate = KarateClub();
  ASSERT_TRUE(SaveEdgeList(karate, path_).ok());
  auto loaded = LoadEdgeList(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->is_unit_weighted());
  EXPECT_EQ(loaded->num_edges(), karate.num_edges());
}

TEST_F(IoTest, SaveToUnwritablePathFails) {
  const Graph karate = KarateClub();
  EXPECT_FALSE(SaveEdgeList(karate, "/nonexistent/dir/out.txt").ok());
}

}  // namespace
}  // namespace cfcm
